(* The Forerunner node / emulator: replays a recorded observer feed (heard
   transactions + arriving blocks) under an execution policy, measuring the
   critical-path execution time of every transaction.

   Policies implement the four rows of the paper's Table 2:
   - [Baseline]: plain EVM execution, per-block StateDB with cold caches.
   - [Perfect_match]: traditional speculative execution — commit memoized
     results only when the actual context matches the (single) speculated
     context exactly.
   - [Perfect_multi]: perfect matching over all speculated futures.
   - [Forerunner]: constraint-based APs with memoization + prefetching, EVM
     fallback on violation.

   State roots are validated against every block header (paper §5.2). *)

open State

type policy = Baseline | Forerunner | Perfect_match | Perfect_multi

let policy_name = function
  | Baseline -> "baseline"
  | Forerunner -> "forerunner"
  | Perfect_match -> "perfect"
  | Perfect_multi -> "perfect+multi"

type outcome =
  | O_unheard
  | O_missed (* heard, but no usable AP / constraints unsatisfied *)
  | O_imperfect (* AP hit; context differed from every speculated one *)
  | O_perfect (* AP hit; context identical to a speculated one *)

type tx_record = {
  hash : string;
  kind : Workload.Gen.kind option;
  gas_used : int;
  heard : bool;
  outcome : outcome;
  exec_ns : int;
  instrs_executed : int;
  instrs_skipped : int;
  ap_paths : int;
  ap_futures : int;
  ap_contexts : int;
  ap_shortcuts : int;
  block_number : int64;
  canonical : bool; (* executed as part of the canonical chain *)
}

type block_record = {
  number : int64;
  n_txs : int;
  gas_used : int;
  gas_limit : int;
  root_ok : bool;
  canonical : bool;
  exec_ns : int;
}

type result = {
  policy : policy;
  txs : tx_record list; (* execution order *)
  blocks : block_record list;
  spec_total_ns : int;
  spec_base_exec_ns : int;
  spec_contexts : int;
  spec_build_errors : int;
  reorgs : int; (* head switches onto a previously non-head branch *)
  fork_blocks : int; (* side blocks processed *)
  synth : Speculator.synth_acc; (* summed per-path synthesis stats *)
  sched : Sched.stats; (* speculation scheduler accounting *)
  apstore : Apstore.stats option; (* template store accounting, when enabled *)
}

type config = {
  max_contexts_initial : int;
  max_contexts_respec : int;
  max_respec_per_block : int;
  validate_hits : bool; (* cross-check every AP hit against the EVM *)
  use_memos : bool; (* ablation: disable memoization shortcuts *)
  prefetch : bool; (* ablation: disable StateDB warming *)
  seed : int;
  jobs : int; (* speculation worker domains; 1 = inline, fully sequential *)
  use_apstore : bool;
      (* the shared template store (lib/apstore): speculation publishes
         input-lifted template APs keyed by call shape; execution serves
         them to structurally-equivalent txs that have no usable per-tx AP *)
  drop_stale_spec : bool;
      (* async invalidation: on a head-extending block, cancel queued
         speculations for the now-included txs and prune every other hash
         to its newest queued job (keep-latest) instead of completing the
         whole backlog first *)
}

let default_config =
  {
    max_contexts_initial = 4;
    max_contexts_respec = 2;
    max_respec_per_block = 64;
    validate_hits = false;
    use_memos = true;
    prefetch = true;
    seed = 7;
    jobs = 1;
    use_apstore = false;
    drop_stale_spec = false;
  }

(* Single-future ablation: the traditional one-prediction pipeline. *)
let single_future_config =
  {
    default_config with
    max_contexts_initial = 1;
    max_contexts_respec = 1;
    max_respec_per_block = 0;
  }

type pending_entry = { p : Predictor.pending; spec : Speculator.spec }

(* Why each re-speculation was triggered (paper §4.4: the predictor keeps
   tracking the pool as it shifts). *)
let obs_respec_same_sender = Obs.counter "predictor.respec.same_sender"
let obs_respec_same_receiver = Obs.counter "predictor.respec.same_receiver"
let obs_respec_new_head = Obs.counter "predictor.respec.new_head"

let is_speculative = function
  | Forerunner | Perfect_match | Perfect_multi -> true
  | Baseline -> false

let replay ?(config = default_config) ~policy (record : Netsim.Record.t) : result =
  (* per-policy wall-time breakdown by phase (labels precomputed so span
     bookkeeping costs no allocation on the hot path) *)
  let phase_pfx = "replay." ^ policy_name policy in
  let l_speculate = phase_pfx ^ ".speculate" in
  let l_execute = phase_pfx ^ ".execute" in
  let l_commit = phase_pfx ^ ".commit" in
  let l_respec = phase_pfx ^ ".respec" in
  let l_barrier = phase_pfx ^ ".barrier" in
  let bk = record.backend in
  let head_root = ref record.genesis_root in
  let head_hash = ref record.genesis_hash in
  let head_number = ref 0L in
  let roots_by_hash : (string, string) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace roots_by_hash record.genesis_hash record.genesis_root;
  let reorgs = ref 0 in
  let fork_blocks = ref 0 in
  let predictor = Predictor.create ~seed:config.seed in
  let pending : (string, pending_entry) Hashtbl.t = Hashtbl.create 1024 in
  let included = Hashtbl.create 4096 in
  let next_st = ref (Statedb.create bk ~root:!head_root) in
  let txs = ref [] in
  let blocks = ref [] in
  let spec_total = ref 0 and spec_base = ref 0 and spec_ctxs = ref 0 and spec_errs = ref 0 in
  let synth_global = Speculator.empty_acc () in
  let pool () = Hashtbl.fold (fun _ e acc -> e.p :: acc) pending [] in

  (* The speculation scheduler.  Prediction stays on this thread (it draws
     from the replay's RNG stream, so its order must not depend on worker
     timing); the pre-execution + AP synthesis runs as a scheduler job.
     With jobs = 1 the job executes inline at submit — the sequential
     pipeline — so worker count never changes what gets speculated, only
     where and when. *)
  let sched : pending_entry Sched.t = Sched.create ~jobs:(max 1 config.jobs) () in

  (* The shared template store (lib/apstore).  All three touch points run
     on this thread at deterministic pipeline positions — reservations
     during prediction, publications while draining results in submission
     order, serves after the pre-block barrier — so store contents at
     every serve are independent of worker timing and jobs=1 ≡ jobs=N
     parity survives.  Workers only ever *build* templates (into their
     entry's own spec record), never touch the store. *)
  let store =
    if config.use_apstore && is_speculative policy then Some (Apstore.create ())
    else None
  in
  let retire_template (e : pending_entry) =
    match (store, e.spec.template_key) with
    | Some s, Some k when not e.spec.template_published -> Apstore.abandon s k
    | _ -> ()
  in

  (* Fingerprint of one speculation's inputs: the head root plus every
     predicted future (the deterministic env fields and the ordered tx
     hashes; [block_hash] is the same closure everywhere).  Equal keys mean
     the speculation would recompute the tx's spec record to the identical
     state, so [Sched.submit] skips the duplicate — the jobs>1 merged-waste
     fix.  Prediction still runs first (it draws from the replay's RNG
     stream), so dedupe never changes what later predictions see. *)
  let spec_key ~root ctxs =
    let b = Buffer.create 256 in
    Buffer.add_string b root;
    List.iter
      (fun ((e : Evm.Env.block_env), ctx_txs) ->
        Buffer.add_char b '|';
        Buffer.add_string b (Address.to_bytes e.coinbase);
        Buffer.add_string b (Printf.sprintf "%Ld:%Ld:%d:" e.timestamp e.number e.gas_limit);
        Buffer.add_string b (U256.to_bytes_be e.difficulty);
        List.iter (fun tx -> Buffer.add_string b (Evm.Env.tx_hash tx)) ctx_txs)
      ctxs;
    Khash.Keccak.digest (Buffer.contents b)
  in

  let speculate_tx now entry n_contexts =
    (* Single-flight template reservation, in prediction order: the first
       pending tx of each call shape owns the template build; later
       same-shape txs coalesce and just consume the published template. *)
    (match store with
    | Some s when entry.spec.template_key = None -> (
      match Apstore.key_of_tx !next_st !Spec.current entry.p.tx with
      | Some k when Apstore.reserve s k -> entry.spec.template_key <- Some k
      | Some _ | None -> ())
    | Some _ | None -> ());
    let ctxs =
      Predictor.contexts predictor ~pool:(pool ()) ~max_contexts:n_contexts
        ~tx_hash:entry.p.hash entry.p.tx
    in
    let root = !head_root in
    Sched.submit sched ~dedupe_key:(spec_key ~root ctxs) ~hash:entry.p.hash ~root
      ~priority:entry.p.tx.gas_price (fun () ->
        Speculator.speculate entry.spec bk ~root ~now ctxs entry.p.tx;
        entry)
  in

  (* Collect finished speculations and warm the next execution StateDB with
     their read sets (the prefetcher).  Results are applied in submission
     order, so the cache fill order is independent of worker timing. *)
  let apply_results () =
    List.iter
      (fun (r : pending_entry Sched.result) ->
        match r.r_value with
        | Error e -> raise e
        | Ok entry ->
          if config.prefetch then Statedb.warm !next_st entry.spec.touches;
          (match (store, entry.spec.template_key) with
          | Some s, Some k when not entry.spec.template_published -> (
            match entry.spec.template_ready with
            | Some tp ->
              Apstore.publish s k tp;
              entry.spec.template_published <- true
            | None -> ())
          | _ -> ()))
      (Sched.drain sched)
  in

  let exec_one st ~canonical benv t_block (tx : Evm.Env.tx) : tx_record * Evm.Processor.receipt =
    let hash = Evm.Env.tx_hash tx in
    let entry = Hashtbl.find_opt pending hash in
    let heard = entry <> None in
    let record_of receipt outcome exec_ns (stats : Ap.Exec.stats option) =
      let executed, skipped =
        match stats with Some s -> (s.executed, s.skipped) | None -> (0, 0)
      in
      let ap_paths, ap_futures, ap_contexts, ap_shortcuts =
        match entry with
        | Some e -> (e.spec.ap.n_paths, e.spec.ap.n_futures, e.spec.contexts, e.spec.ap.shortcut_count)
        | None -> (0, 0, 0, 0)
      in
      ( {
          hash;
          kind = Hashtbl.find_opt record.tx_kinds hash;
          gas_used = receipt.Evm.Processor.gas_used;
          heard;
          outcome;
          exec_ns;
          instrs_executed = executed;
          instrs_skipped = skipped;
          ap_paths;
          ap_futures;
          ap_contexts;
          ap_shortcuts;
          block_number = benv.Evm.Env.number;
          canonical;
        },
        receipt )
    in
    let full_exec outcome =
      let receipt, ns = Clock.time (fun () -> Evm.Processor.execute_tx st benv tx) in
      record_of receipt outcome ns None
    in
    match policy with
    | Baseline -> full_exec (if heard then O_missed else O_unheard)
    | Perfect_match | Perfect_multi -> (
      let paths =
        match entry with
        | Some e when e.spec.ready_at <= t_block ->
          if policy = Perfect_match then
            (match e.spec.paths with p :: _ -> [ p ] | [] -> [])
          else e.spec.paths
        | Some _ | None -> []
      in
      let res, ns = Clock.time (fun () ->
          match Perfect.try_paths paths st benv tx with
          | Some receipt -> `Hit receipt
          | None -> `Miss (Evm.Processor.execute_tx st benv tx))
      in
      match res with
      | `Hit receipt -> record_of receipt O_perfect ns None
      | `Miss receipt ->
        record_of receipt (if heard then O_missed else O_unheard) ns None)
    | Forerunner -> (
      let ap_usable =
        match entry with
        | Some e when e.spec.ready_at <= t_block && e.spec.ap.roots <> [] -> Some e
        | Some _ | None -> None
      in
      (* Shared AP-execution arm: per-tx APs classify a guard violation as
         O_missed (the tx was heard and speculated); template serves pass
         the heard-sensitive outcome through [miss_outcome]. *)
      let run_ap ~paths ~miss_outcome ap =
        (* outcome classification (Table 3) must look at the pre-write
           context; it runs before the timed execution and outside it *)
        let was_perfect =
          List.exists (fun p -> Perfect.context_matches p st benv) paths
        in
        let reference =
          if config.validate_hits then begin
            (* shadow-execute on a journal snapshot for validation *)
            let snap = Statedb.snapshot st in
            let r = Evm.Processor.execute_tx st benv tx in
            Statedb.revert st snap;
            Some r
          end
          else None
        in
        let res, ns = Clock.time (fun () ->
            match Ap.Exec.execute ~use_memos:config.use_memos ap st benv tx with
            | Ap.Exec.Hit (receipt, stats) -> `Hit (receipt, stats)
            | Ap.Exec.Violation -> `Miss (Evm.Processor.execute_tx st benv tx))
        in
        match res with
        | `Hit (receipt, stats) ->
          (match reference with
          | Some r ->
            if
              not
                (Evm.Processor.status_equal r.status receipt.status
                && r.gas_used = receipt.gas_used
                && String.equal r.output receipt.output
                && List.length r.logs = List.length receipt.logs
                && List.for_all2 Evm.Env.log_equal r.logs receipt.logs)
            then
              invalid_arg
                (Printf.sprintf "AP hit diverged from EVM for tx %s"
                   (Khash.Keccak.to_hex hash))
          | None -> ());
          record_of receipt (if was_perfect then O_perfect else O_imperfect) ns (Some stats)
        | `Miss receipt -> record_of receipt miss_outcome ns None
      in
      match ap_usable with
      | Some e -> run_ap ~paths:e.spec.paths ~miss_outcome:O_missed e.spec.ap
      | None -> (
        let missed = if heard then O_missed else O_unheard in
        (* no usable per-tx AP: a template built from some structurally
           equivalent transaction may still serve this one *)
        let template =
          match store with
          | Some s -> (
            match Apstore.key_of_tx st !Spec.current tx with
            | Some k -> Apstore.find s k
            | None -> None)
          | None -> None
        in
        match template with
        | Some tp -> run_ap ~paths:[] ~miss_outcome:missed tp
        | None -> full_exec missed))
  in

  Fun.protect
    ~finally:(fun () -> Sched.shutdown sched)
    (fun () ->
  Array.iter
    (fun ev ->
      match ev with
      | Netsim.Record.Heard (t, tx) ->
        let hash = Evm.Env.tx_hash tx in
        if (not (Hashtbl.mem included hash)) && not (Hashtbl.mem pending hash) then begin
          let entry =
            { p = { Predictor.tx; hash; heard_at = t }; spec = Speculator.create_spec () }
          in
          Hashtbl.replace pending hash entry;
          if is_speculative policy then begin
            Obs.span l_speculate (fun () ->
                speculate_tx t entry config.max_contexts_initial);
            (* The new arrival may belong to the dependency group of already
               pending transactions whose contexts are now stale: re-speculate
               them (the paper's predictor continuously tracks the pool).
               Same-sender higher-nonce txs always requalify (nonce order);
               same-receiver txs requalify up to a small budget. *)
            let same_sender = ref [] and same_to = ref [] in
            Hashtbl.iter
              (fun h (e : pending_entry) ->
                if h <> hash then begin
                  if
                    Address.equal e.p.tx.sender tx.sender && e.p.tx.nonce > tx.nonce
                  then same_sender := e :: !same_sender
                  else
                    match (e.p.tx.to_, tx.to_) with
                    | Some a, Some b
                      when Address.equal a b && U256.le e.p.tx.gas_price tx.gas_price ->
                      same_to := e :: !same_to
                    | (Some _ | None), _ -> ()
                end)
              pending;
            Obs.span l_respec (fun () ->
                Obs.add obs_respec_same_sender (List.length !same_sender);
                List.iter (fun e -> speculate_tx t e config.max_contexts_respec) !same_sender;
                let recent =
                  List.sort
                    (fun (a : pending_entry) b -> compare b.p.heard_at a.p.heard_at)
                    !same_to
                in
                List.iteri
                  (fun i e ->
                    if i < 3 then begin
                      Obs.incr obs_respec_same_receiver;
                      speculate_tx t e config.max_contexts_respec
                    end)
                  recent)
          end
        end
      | Netsim.Record.Tick _ ->
        (* speculation-budget boundary: collect whatever the workers have
           finished so prefetching proceeds between deliveries *)
        if is_speculative policy then apply_results ()
      | Netsim.Record.Block (t, b) -> (
        match Hashtbl.find_opt roots_by_hash b.header.parent_hash with
        | None -> () (* orphan: parent never seen; a real node would fetch it *)
        | Some parent_root ->
          let extends_head = String.equal b.header.parent_hash !head_hash in
          (* Block boundary: quiesce the workers before executing — the
             commit below writes trie nodes into the shared backend the
             workers read.  In drop-stale mode a head-extending block first
             sheds the superseded backlog: queued speculation for the
             included txs is cancelled outright and every other hash is
             pruned to its newest queued job (keep-latest — still-valid
             speculations survive the head change). *)
          if is_speculative policy then begin
            if config.drop_stale_spec && extends_head then begin
              Sched.cancel sched (List.map Evm.Env.tx_hash b.txs);
              ignore (Sched.invalidate sched ~root:b.header.state_root : int)
            end;
            Obs.span l_barrier (fun () -> Sched.barrier sched);
            apply_results ()
          end;
          let exec_st =
            if extends_head then !next_st else Statedb.create bk ~root:parent_root
          in
          let canonical = Netsim.Record.is_canonical record b in
          if not extends_head then incr fork_blocks;
          let benv =
            Chain.Stf.block_env_of_header b.header ~block_hash:(fun n -> U256.of_int64 n)
          in
          let block_ns = ref 0 in
          let gas = ref 0 in
          List.iter
            (fun tx ->
              let tr, _receipt =
                Obs.span l_execute (fun () -> exec_one exec_st ~canonical benv t tx)
              in
              block_ns := !block_ns + tr.exec_ns;
              gas := !gas + tr.gas_used;
              txs := tr :: !txs)
            b.txs;
          let root = Obs.span l_commit (fun () -> Statedb.commit exec_st) in
          let root_ok = String.equal root b.header.state_root in
          if not root_ok then
            invalid_arg
              (Printf.sprintf "state root mismatch at block %Ld under policy %s"
                 b.header.number (policy_name policy));
          let bhash = Chain.Block.hash b in
          Hashtbl.replace roots_by_hash bhash root;
          blocks :=
            {
              number = b.header.number;
              n_txs = List.length b.txs;
              gas_used = !gas;
              gas_limit = b.header.gas_limit;
              root_ok;
              canonical;
              exec_ns = !block_ns;
            }
            :: !blocks;
          (* head selection: strictly higher blocks win; the first block seen
             at a given height keeps the head otherwise *)
          if b.header.number > !head_number then begin
            if not extends_head then incr reorgs;
            head_number := b.header.number;
            head_hash := bhash;
            head_root := root;
            Predictor.observe_block predictor b;
            next_st := Statedb.create bk ~root;
            (* account and retire the included pending txs *)
            List.iter
              (fun tx ->
                let h = Evm.Env.tx_hash tx in
                Hashtbl.replace included h ();
                match Hashtbl.find_opt pending h with
                | Some e ->
                  spec_total := !spec_total + e.spec.spec_time_ns;
                  spec_base := !spec_base + e.spec.base_exec_ns;
                  spec_ctxs := !spec_ctxs + e.spec.contexts;
                  spec_errs := !spec_errs + e.spec.build_errors;
                  Speculator.acc_merge synth_global e.spec.synth;
                  retire_template e;
                  Hashtbl.remove pending h
                | None -> ())
              b.txs;
            (* drop pending txs made stale by this block *)
            let stale = ref [] in
            Hashtbl.iter
              (fun h (e : pending_entry) ->
                if e.p.tx.nonce < Statedb.get_nonce !next_st e.p.tx.sender then begin
                  retire_template e;
                  stale := h :: !stale
                end)
              pending;
            List.iter (Hashtbl.remove pending) !stale;
            (* bound the scheduler's dedupe memo: retired hashes never
               resubmit, so their entries would otherwise pile up forever *)
            Sched.forget sched (List.map Evm.Env.tx_hash b.txs @ !stale);
            (* re-speculate the hottest pending txs against the new head *)
            if is_speculative policy then begin
              let entries = Hashtbl.fold (fun _ e acc -> e :: acc) pending [] in
              let entries =
                List.sort
                  (fun (a : pending_entry) b ->
                    U256.compare b.p.tx.gas_price a.p.tx.gas_price)
                  entries
              in
              let entries =
                List.filteri (fun i _ -> i < config.max_respec_per_block) entries
              in
              Obs.span l_respec (fun () ->
                  Obs.add obs_respec_new_head (List.length entries);
                  List.iter (fun e -> speculate_tx t e config.max_contexts_respec) entries)
            end
          end))
    record.events;
  (* settle the tail: finish outstanding speculation and surface any
     worker-side exception before the domains are joined *)
  if is_speculative policy then begin
    Sched.barrier sched;
    apply_results ()
  end);
  {
    policy;
    txs = List.rev !txs;
    blocks = List.rev !blocks;
    spec_total_ns = !spec_total;
    spec_base_exec_ns = !spec_base;
    spec_contexts = !spec_ctxs;
    spec_build_errors = !spec_errs;
    reorgs = !reorgs;
    fork_blocks = !fork_blocks;
    synth = synth_global;
    sched = Sched.stats sched;
    apstore = Option.map Apstore.stats store;
  }
