(* The multi-future predictor (paper §4.4): next-block prediction plus
   context construction.

   Next-block prediction follows the miners' incentives: higher gas price is
   packed earlier, so the pending transactions that can precede a target in
   its block are the inter-dependent ones with a higher (or tied) price.
   Block metadata is predicted from simple statistics: the next timestamp is
   the head's plus sampled recent intervals, the coinbase is drawn from the
   observed miner frequency table.  Context construction groups dependent
   transactions and enumerates plausible orderings, erring on the side of
   recall (several contexts per transaction). *)

open State

type pending = { tx : Evm.Env.tx; hash : string; heard_at : float }

type t = {
  mutable head_number : int64;
  mutable head_timestamp : int64;
  mutable head_gas_limit : int;
  coinbase_freq : int Address.Tbl.t;
  mutable intervals : int list; (* recent block intervals, seconds *)
  rng : Random.State.t;
}

let create ~seed =
  {
    head_number = 0L;
    head_timestamp = 0L;
    head_gas_limit = 12_000_000;
    coinbase_freq = Address.Tbl.create 16;
    intervals = [];
    rng = Random.State.make [| seed; 0x9ED1 |];
  }

(* Feed chain observations to the statistics. *)
let observe_block t (b : Chain.Block.t) =
  let prev_ts = t.head_timestamp in
  t.head_number <- b.header.number;
  t.head_gas_limit <- b.header.gas_limit;
  if Int64.compare prev_ts 0L > 0 then begin
    let d = Int64.to_int (Int64.sub b.header.timestamp prev_ts) in
    t.intervals <- d :: (if List.length t.intervals > 32 then List.filteri (fun i _ -> i < 31) t.intervals else t.intervals)
  end;
  t.head_timestamp <- b.header.timestamp;
  Address.Tbl.replace t.coinbase_freq b.header.coinbase
    (1 + match Address.Tbl.find_opt t.coinbase_freq b.header.coinbase with Some n -> n | None -> 0)

(* Most-frequently-observed miners, descending. *)
let top_coinbases t ~n =
  let all = Address.Tbl.fold (fun a c acc -> (a, c) :: acc) t.coinbase_freq [] in
  let sorted = List.sort (fun (_, c1) (_, c2) -> compare c2 c1) all in
  let top = List.filteri (fun i _ -> i < n) (List.map fst sorted) in
  if top = [] then [ Address.of_int 0x300000 ] else top

let mean_interval t =
  match t.intervals with
  | [] -> 13
  | l -> max 1 (List.fold_left ( + ) 0 l / List.length l)

(* Predicted block environments for the next block, most likely first: the
   head timestamp advanced by sampled recent intervals, crossed with the
   most probable miners. *)
let predict_envs t ~n : Evm.Env.block_env list =
  let mk cb delta =
    {
      Evm.Env.coinbase = cb;
      timestamp = Int64.add t.head_timestamp (Int64.of_int delta);
      number = Int64.add t.head_number 1L;
      difficulty = U256.of_int 1;
      gas_limit = t.head_gas_limit;
      chain_id = 1;
      block_hash = (fun bn -> U256.of_int64 bn);
    }
  in
  let m = mean_interval t in
  let cbs = top_coinbases t ~n:3 in
  let cb1 = List.hd cbs in
  let combos =
    List.map (fun cb -> (cb, m)) cbs
    @ [ (cb1, max 1 (m / 3)); (cb1, 2 * m); (cb1, 3 * m) ]
  in
  List.filteri (fun i _ -> i < n) (List.map (fun (cb, d) -> mk cb d) combos)

(* Transactions from [pool] that can interfere with [tx]'s context: those a
   miner is likely to order before it (same contract or same sender, gas
   price not lower), plus all lower-nonce transactions from the same sender
   (which MUST precede it). *)
let dependency_group ~pool ~tx_hash (tx : Evm.Env.tx) =
  let interferes (p : pending) =
    (not (String.equal p.hash tx_hash))
    && (Address.equal p.tx.sender tx.sender
       ||
       match (p.tx.to_, tx.to_) with
       | Some a, Some b -> Address.equal a b
       | (Some _ | None), _ -> false)
  in
  let required, optional =
    List.partition
      (fun (p : pending) ->
        Address.equal p.tx.sender tx.sender && p.tx.nonce < tx.nonce)
      (List.filter interferes pool)
  in
  let optional =
    List.filter (fun (p : pending) -> U256.ge p.tx.gas_price tx.gas_price) optional
  in
  (* keep the group small: the highest-priced interferers *)
  let optional =
    List.sort (fun (a : pending) b -> U256.compare b.tx.gas_price a.tx.gas_price) optional
  in
  let optional = List.filteri (fun i _ -> i < 6) optional in
  (required, optional)

let price_order txs =
  List.sort
    (fun (a : pending) (b : pending) ->
      let c = U256.compare b.tx.gas_price a.tx.gas_price in
      if c <> 0 then c else compare a.heard_at b.heard_at)
    txs

(* Orderings of the txs that might execute before [tx] in its block.  The
   required (same-sender lower-nonce) txs are always included, nonce-sorted
   up front. *)
let orderings t ~required ~optional ~n =
  let req = List.sort (fun (a : pending) b -> compare a.tx.nonce b.tx.nonce) required in
  let base l = req @ l in
  let shuffle l =
    let arr = Array.of_list l in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int t.rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list arr
  in
  let cands =
    [ base (price_order optional); base []; base (shuffle optional);
      base (shuffle optional) ]
  in
  (* dedupe *)
  let seen = Hashtbl.create 8 in
  let uniq =
    List.filter
      (fun c ->
        let key = String.concat "" (List.map (fun (p : pending) -> p.hash) c) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      cands
  in
  List.filteri (fun i _ -> i < n) (List.map (List.map (fun (p : pending) -> p.tx)) uniq)

let obs_requests = Obs.counter "predictor.context_requests"
let obs_contexts = Obs.counter "predictor.contexts_predicted"

(* Construct up to [max_contexts] (env, preceding-txs) futures. *)
let contexts t ~pool ~max_contexts ~tx_hash tx =
  Obs.incr obs_requests;
  let required, optional = dependency_group ~pool ~tx_hash tx in
  let envs = predict_envs t ~n:4 in
  let ords = orderings t ~required ~optional ~n:2 in
  let all =
    match envs with
    | [] -> []
    | primary_env :: other_envs ->
      (* primary env with every ordering, then other envs with the primary
         ordering *)
      List.map (fun o -> (primary_env, o)) ords
      @ List.map
          (fun e -> (e, match ords with o :: _ -> o | [] -> []))
          other_envs
  in
  let picked = List.filteri (fun i _ -> i < max_contexts) all in
  Obs.add obs_contexts (List.length picked);
  picked
