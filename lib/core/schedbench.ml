(* jobs=1 vs jobs=N comparison harness for the speculation scheduler.

   The same Record.t is replayed three times under Forerunner: inline
   (jobs=1), parallel with barrier semantics (jobs=N, the default node
   configuration — bitwise-identical speculation results, just produced on
   worker domains), and parallel with drop-stale invalidation (sheds the
   queued backlog at every head-extending block, exercising the
   cancel/requeue protocol).  Replays share the backend (the trie store is
   content-addressed and append-only), so later runs see a warmer node
   database — which favours the FIRST run, so a throughput ratio above 1
   understates, never overstates, the parallel speedup. *)

type run_stats = {
  jobs : int;
  drop_stale : bool;
  replay_wall_ns : int;
  speculated : int;
  spec_txs_per_sec : float;
  hit_rate_pct : float;
  perfect : int;
  imperfect : int;
  missed : int;
  unheard : int;
  cancelled : int;
  requeued : int;
  merged : int;
  high_water : int;
}

type comparison = {
  seq : run_stats;
  par : run_stats;
  stale : run_stats;
  throughput_ratio : float;
  outcomes_match : bool;
  blocks_match : bool;
}

let count_outcome (r : Node.result) o =
  List.length (List.filter (fun (t : Node.tx_record) -> t.outcome = o) r.txs)

let one_run ~jobs ~drop_stale ~config record =
  let config = { config with Node.jobs; drop_stale_spec = drop_stale } in
  let result, wall_ns =
    Clock.time (fun () -> Node.replay ~config ~policy:Node.Forerunner record)
  in
  let perfect = count_outcome result Node.O_perfect in
  let imperfect = count_outcome result Node.O_imperfect in
  let missed = count_outcome result Node.O_missed in
  let unheard = count_outcome result Node.O_unheard in
  let heard = perfect + imperfect + missed in
  let s = result.sched in
  ( result,
    {
      jobs;
      drop_stale;
      replay_wall_ns = wall_ns;
      speculated = s.completed;
      spec_txs_per_sec =
        float_of_int s.completed /. (float_of_int (max 1 wall_ns) /. 1e9);
      hit_rate_pct =
        100.0 *. float_of_int (perfect + imperfect) /. float_of_int (max 1 heard);
      perfect;
      imperfect;
      missed;
      unheard;
      cancelled = s.cancelled;
      requeued = s.requeued;
      merged = s.merged;
      high_water = s.high_water;
    } )

let tx_key (t : Node.tx_record) = (t.hash, t.outcome, t.gas_used, t.block_number)
let block_key (b : Node.block_record) = (b.number, b.root_ok, b.gas_used)

let compare_jobs ?(config = Node.default_config) ~jobs record =
  let r_seq, seq = one_run ~jobs:1 ~drop_stale:false ~config record in
  let r_par, par = one_run ~jobs ~drop_stale:false ~config record in
  let _, stale = one_run ~jobs ~drop_stale:true ~config record in
  {
    seq;
    par;
    stale;
    throughput_ratio = par.spec_txs_per_sec /. Float.max 1e-9 seq.spec_txs_per_sec;
    outcomes_match =
      List.map tx_key r_seq.txs = List.map tx_key r_par.txs;
    blocks_match =
      List.map block_key r_seq.blocks = List.map block_key r_par.blocks;
  }

let print c =
  (* the throughput ratio is bounded by available cores: on a single-core
     host the parallel replays timeshare (and pay the multi-domain GC
     sync), so only a multicore run can show the scaling *)
  Printf.printf "host parallelism: %d recommended domain(s)\n\n"
    (Domain.recommended_domain_count ());
  Printf.printf "%-22s %8s %10s %12s %9s %9s %9s %8s\n" "variant" "jobs" "wall (s)"
    "spec tx/s" "hit rate" "cancelled" "requeued" "merged";
  let row name (s : run_stats) =
    Printf.printf "%-22s %8d %10.2f %12.1f %8.2f%% %9d %9d %8d\n" name s.jobs
      (float_of_int s.replay_wall_ns /. 1e9)
      s.spec_txs_per_sec s.hit_rate_pct s.cancelled s.requeued s.merged
  in
  row "sequential" c.seq;
  row "parallel (barrier)" c.par;
  row "parallel (drop-stale)" c.stale;
  Printf.printf "\nthroughput ratio (parallel/sequential): %.2fx\n" c.throughput_ratio;
  Printf.printf "per-tx outcomes identical: %b; per-block results identical: %b\n"
    c.outcomes_match c.blocks_match

let json_of_run (s : run_stats) =
  Printf.sprintf
    "{\"jobs\":%d,\"drop_stale\":%b,\"replay_wall_ns\":%d,\"speculated\":%d,\
     \"spec_txs_per_sec\":%.3f,\"hit_rate_pct\":%.3f,\"perfect\":%d,\
     \"imperfect\":%d,\"missed\":%d,\"unheard\":%d,\"cancelled\":%d,\
     \"requeued\":%d,\"merged\":%d,\"queue_high_water\":%d}"
    s.jobs s.drop_stale s.replay_wall_ns s.speculated s.spec_txs_per_sec s.hit_rate_pct
    s.perfect s.imperfect s.missed s.unheard s.cancelled s.requeued s.merged s.high_water

let to_json c =
  Printf.sprintf
    "{\"seq\":%s,\"par\":%s,\"drop_stale\":%s,\"throughput_ratio\":%.3f,\
     \"outcomes_match\":%b,\"blocks_match\":%b}"
    (json_of_run c.seq) (json_of_run c.par) (json_of_run c.stale) c.throughput_ratio
    c.outcomes_match c.blocks_match

let write_json ~file c =
  let oc = open_out file in
  output_string oc (to_json c);
  output_char oc '\n';
  close_out oc
