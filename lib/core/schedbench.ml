(* jobs=1 vs jobs=N comparison harness for the speculation scheduler.

   The same Record.t is replayed three times under Forerunner: inline
   (jobs=1), parallel with barrier semantics (jobs=N, the default node
   configuration — bitwise-identical speculation results, just produced on
   worker domains), and parallel with drop-stale invalidation (sheds the
   queued backlog at every head-extending block, exercising the
   cancel/requeue protocol).  Replays share the backend (the trie store is
   content-addressed and append-only), so later runs see a warmer node
   database — which favours the FIRST run, so a throughput ratio above 1
   understates, never overstates, the parallel speedup. *)

open State

type run_stats = {
  jobs : int;
  drop_stale : bool;
  replay_wall_ns : int;
  speculated : int;
  spec_txs_per_sec : float;
  hit_rate_pct : float;
  perfect : int;
  imperfect : int;
  missed : int;
  unheard : int;
  cancelled : int;
  requeued : int;
  merged : int;
  deduped : int;
  high_water : int;
}

type par_workload = {
  pw_name : string;
  pw_jobs : int;
  pw_static : bool;
  pw_blocks : int;
  pw_txs : int;
  pw_aborted : int;
  pw_forced : int;
  pw_reruns : int;
  pw_static_serial : int;
  pw_ap_hits : int;
  pw_abort_rate_pct : float;
  pw_seq_wall_ns : int;
  pw_par_wall_ns : int;
  pw_speedup : float;
  pw_roots_match : bool;
}

type comparison = {
  seq : run_stats;
  par : run_stats;
  stale : run_stats;
  throughput_ratio : float;
  outcomes_match : bool;
  blocks_match : bool;
  parallel : par_workload list;
}

let count_outcome (r : Node.result) o =
  List.length (List.filter (fun (t : Node.tx_record) -> t.outcome = o) r.txs)

let one_run ~jobs ~drop_stale ~config record =
  let config = { config with Node.jobs; drop_stale_spec = drop_stale } in
  let result, wall_ns =
    Clock.time (fun () -> Node.replay ~config ~policy:Node.Forerunner record)
  in
  let perfect = count_outcome result Node.O_perfect in
  let imperfect = count_outcome result Node.O_imperfect in
  let missed = count_outcome result Node.O_missed in
  let unheard = count_outcome result Node.O_unheard in
  let heard = perfect + imperfect + missed in
  let s = result.sched in
  ( result,
    {
      jobs;
      drop_stale;
      replay_wall_ns = wall_ns;
      speculated = s.completed;
      spec_txs_per_sec =
        float_of_int s.completed /. (float_of_int (max 1 wall_ns) /. 1e9);
      hit_rate_pct =
        100.0 *. float_of_int (perfect + imperfect) /. float_of_int (max 1 heard);
      perfect;
      imperfect;
      missed;
      unheard;
      cancelled = s.cancelled;
      requeued = s.requeued;
      merged = s.merged;
      deduped = s.deduped;
      high_water = s.high_water;
    } )

let tx_key (t : Node.tx_record) = (t.hash, t.outcome, t.gas_used, t.block_number)
let block_key (b : Node.block_record) = (b.number, b.root_ok, b.gas_used)

(* ---- conflict-aware parallel block apply (DESIGN.md §10) ---- *)

let canonical_blocks (record : Netsim.Record.t) =
  Array.to_list record.events
  |> List.filter_map (fun ev ->
         match ev with
         | Netsim.Record.Block (_, b) when Netsim.Record.is_canonical record b -> Some b
         | Netsim.Record.Block _ | Netsim.Record.Heard _ | Netsim.Record.Tick _ -> None)
  |> List.sort (fun (a : Chain.Block.t) b -> compare a.header.number b.header.number)

(* Per-block AP construction — the speculation that, in the live node, ran
   off the critical path while the txs sat in the pool: each tx is traced
   against the parent state under the block's own env, so its constraints
   hold at execution time and the parallel phase goes through the fast
   path; conflicts are then detected at commit, not by guard violations. *)
let build_aps bk ~parent_root benv (txs : Evm.Env.tx list) =
  let table : (string, Ap.Program.t) Hashtbl.t = Hashtbl.create 64 in
  let st = Statedb.create bk ~root:parent_root in
  List.iter
    (fun (tx : Evm.Env.tx) ->
      if tx.to_ <> None then begin
        let snap = Statedb.snapshot st in
        let sink, get = Evm.Trace.collector () in
        let receipt = Evm.Processor.execute_tx ~trace:sink st benv tx in
        Statedb.revert st snap;
        match receipt.status with
        | Evm.Processor.Invalid _ -> () (* valid only later in the block *)
        | Evm.Processor.Success | Evm.Processor.Reverted -> (
          match Sevm.Builder.build tx benv (get ()) receipt st with
          | Ok path ->
            let ap = Ap.Program.create () in
            Ap.Program.add_path ap path;
            Hashtbl.replace table (Evm.Env.tx_hash tx) ap
          | Error _ -> ())
      end)
    txs;
  table

let run_parallel_blocks ?(with_ap = true) ?(static_partition = false) ~jobs ~name
    (record : Netsim.Record.t) =
  let bk = record.backend in
  let blocks = canonical_blocks record in
  let pool = Chain.Stf.create_pool ~jobs () in
  Fun.protect ~finally:(fun () -> Chain.Stf.shutdown_pool pool) @@ fun () ->
  let parent = ref record.genesis_root in
  let seq_ns = ref 0 and par_ns = ref 0 in
  let n_txs = ref 0 and aborted = ref 0 and forced = ref 0 in
  let reruns = ref 0 and ap_hits = ref 0 and static_serial = ref 0 in
  let roots_ok = ref true in
  List.iter
    (fun (b : Chain.Block.t) ->
      let benv =
        Chain.Stf.block_env_of_header b.header ~block_hash:(fun n -> U256.of_int64 n)
      in
      let ap_table =
        if with_ap then build_aps bk ~parent_root:!parent benv b.txs else Hashtbl.create 1
      in
      let ap (tx : Evm.Env.tx) = Hashtbl.find_opt ap_table (Evm.Env.tx_hash tx) in
      let st_seq = Statedb.create bk ~root:!parent in
      let r_seq, ns = Clock.time (fun () -> Chain.Stf.apply_txs st_seq benv b.txs) in
      seq_ns := !seq_ns + ns;
      let st_par = Statedb.create bk ~root:!parent in
      let (r_par, stats), nsp =
        Clock.time (fun () ->
            Chain.Stf.apply_txs_parallel ~pool ~ap ~static_partition st_par benv b.txs)
      in
      par_ns := !par_ns + nsp;
      n_txs := !n_txs + stats.par_txs;
      aborted := !aborted + stats.par_aborted;
      forced := !forced + stats.par_forced;
      reruns := !reruns + stats.par_reruns;
      ap_hits := !ap_hits + stats.par_ap_hits;
      static_serial := !static_serial + stats.par_static_serial;
      if
        not
          (String.equal r_par.state_root r_seq.state_root
          && String.equal r_seq.state_root b.header.state_root)
      then roots_ok := false;
      parent := b.header.state_root)
    blocks;
  {
    pw_name = name;
    pw_jobs = jobs;
    pw_static = static_partition;
    pw_blocks = List.length blocks;
    pw_txs = !n_txs;
    pw_aborted = !aborted;
    pw_forced = !forced;
    pw_reruns = !reruns;
    pw_static_serial = !static_serial;
    pw_ap_hits = !ap_hits;
    pw_abort_rate_pct = 100.0 *. float_of_int (!aborted + !forced) /. float_of_int (max 1 !n_txs);
    pw_seq_wall_ns = !seq_ns;
    pw_par_wall_ns = !par_ns;
    pw_speedup = float_of_int !seq_ns /. float_of_int (max 1 !par_ns);
    pw_roots_match = !roots_ok;
  }

(* AMM-heavy blocks serialize on the pair's reserves and should conflict
   hard; disjoint transfers should barely conflict at all.  The mixed
   record sits in between. *)
let parallel_suite ?(with_ap = true) ?(scale = 1.0) ~jobs () =
  let mk ~seed ~mix ~n_users duration =
    {
      Netsim.Sim.default_params with
      seed;
      duration = Float.max 20.0 (duration *. scale);
      tx_rate = 14.0;
      n_users;
      mix;
    }
  in
  (* Each workload runs twice on the same record: static pre-partitioning
     off, then on.  The partitioner is a pure scheduling heuristic, so the
     on/off pair must agree on every committed root (pw_roots_match checks
     each run against the canonical header roots, which the off run already
     matched — so agreement there is byte-identity between the two) while
     the abort/rerun counts show what the static footprints bought. *)
  let work name params =
    let record = Netsim.Sim.run ~params () in
    [ run_parallel_blocks ~with_ap ~static_partition:false ~jobs ~name record;
      run_parallel_blocks ~with_ap ~static_partition:true ~jobs ~name record ]
  in
  (* The transfer record draws senders/recipients uniformly, so the user
     pool sets the collision rate: a ~200-tx block over 2000 users touches
     mostly-disjoint accounts (the real-Ethereum shape Saraph & Herlihy
     measured), while the same block over 120 users is one big nonce/
     balance pile-up.  The AMM record conflicts through the shared pair
     reserves no matter how many users swap. *)
  List.concat
    [
      work "transfer"
        (mk ~seed:7001 ~mix:[ (Workload.Gen.Eth_transfer, 1.0) ] ~n_users:2000 60.0);
      work "amm" (mk ~seed:7002 ~mix:[ (Workload.Gen.Amm_swap, 1.0) ] ~n_users:120 60.0);
      work "mixed" (mk ~seed:7003 ~mix:Workload.Gen.default_mix ~n_users:120 60.0);
    ]

let compare_jobs ?(config = Node.default_config) ?(par_suite = true) ~jobs record =
  let r_seq, seq = one_run ~jobs:1 ~drop_stale:false ~config record in
  let r_par, par = one_run ~jobs ~drop_stale:false ~config record in
  let _, stale = one_run ~jobs ~drop_stale:true ~config record in
  {
    seq;
    par;
    stale;
    throughput_ratio = par.spec_txs_per_sec /. Float.max 1e-9 seq.spec_txs_per_sec;
    outcomes_match =
      List.map tx_key r_seq.txs = List.map tx_key r_par.txs;
    blocks_match =
      List.map block_key r_seq.blocks = List.map block_key r_par.blocks;
    parallel = (if par_suite then parallel_suite ~scale:(Datasets.scale ()) ~jobs () else []);
  }

let print c =
  (* the throughput ratio is bounded by available cores: on a single-core
     host the parallel replays timeshare (and pay the multi-domain GC
     sync), so only a multicore run can show the scaling *)
  Printf.printf "host parallelism: %d recommended domain(s)\n\n"
    (Domain.recommended_domain_count ());
  Printf.printf "%-22s %8s %10s %12s %9s %9s %9s %8s %8s\n" "variant" "jobs" "wall (s)"
    "spec tx/s" "hit rate" "cancelled" "requeued" "merged" "deduped";
  let row name (s : run_stats) =
    Printf.printf "%-22s %8d %10.2f %12.1f %8.2f%% %9d %9d %8d %8d\n" name s.jobs
      (float_of_int s.replay_wall_ns /. 1e9)
      s.spec_txs_per_sec s.hit_rate_pct s.cancelled s.requeued s.merged s.deduped
  in
  row "sequential" c.seq;
  row "parallel (barrier)" c.par;
  row "parallel (drop-stale)" c.stale;
  Printf.printf "\nthroughput ratio (parallel/sequential): %.2fx\n" c.throughput_ratio;
  Printf.printf "per-tx outcomes identical: %b; per-block results identical: %b\n"
    c.outcomes_match c.blocks_match;
  if c.parallel <> [] then begin
    Printf.printf "\nconflict-aware parallel block apply (jobs=%d):\n"
      (match c.parallel with pw :: _ -> pw.pw_jobs | [] -> 0);
    Printf.printf "%-10s %6s %7s %7s %8s %8s %7s %8s %11s %9s %6s\n" "workload" "static"
      "blocks" "txs" "aborted" "forced" "serial" "ap hits" "abort rate" "speedup" "roots";
    List.iter
      (fun pw ->
        Printf.printf "%-10s %6s %7d %7d %8d %8d %7d %8d %10.2f%% %8.2fx %6s\n" pw.pw_name
          (if pw.pw_static then "on" else "off")
          pw.pw_blocks pw.pw_txs pw.pw_aborted pw.pw_forced pw.pw_static_serial
          pw.pw_ap_hits pw.pw_abort_rate_pct pw.pw_speedup
          (if pw.pw_roots_match then "ok" else "FAIL"))
      c.parallel
  end

(* ---- shared BENCH_*.json artifact header (schema + run metadata) ----

   Every benchmark artifact the repo emits (BENCH_sched.json,
   BENCH_interp.json, BENCH_apstore.json) opens with the same fields so
   downstream tooling can dispatch on one stable prefix:

     {"schema_version":N,"experiment":"...","fork":"...",...}

   Bump [schema_version] whenever a field of any artifact changes meaning
   or disappears; adding fields is backward compatible.

   v2: BENCH_sched.json's parallel_blocks array carries each workload
   twice, keyed by the new static_partition field (the lib/bca
   pre-partitioning comparison), so per-workload consumers must group by
   (workload, static_partition) instead of workload alone. *)

let schema_version = 2

let meta_header ?(extra = []) ~experiment () =
  let kvs =
    [ ("schema_version", string_of_int schema_version);
      ("experiment", Printf.sprintf "%S" experiment);
      ("fork", Printf.sprintf "%S" !Spec.current.Spec.name) ]
    @ extra
  in
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) kvs)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Structural check, not a JSON parser: the artifact must be an object
   opening with the exact shared header prefix for [experiment], with a
   fork field right behind it.  Run by the bench binary on every artifact
   it writes, so a header regression fails the benchmark run itself. *)
let validate_header ~experiment file =
  match (try Ok (read_file file) with Sys_error e -> Error e) with
  | Error e -> Error e
  | Ok s ->
    let prefix =
      Printf.sprintf "{\"schema_version\":%d,\"experiment\":%S,\"fork\":\""
        schema_version experiment
    in
    if String.length s >= String.length prefix
       && String.equal (String.sub s 0 (String.length prefix)) prefix
    then Ok ()
    else
      Error
        (Printf.sprintf "%s: missing or stale schema header (want prefix %s)" file
           prefix)

let json_of_run (s : run_stats) =
  Printf.sprintf
    "{\"jobs\":%d,\"drop_stale\":%b,\"replay_wall_ns\":%d,\"speculated\":%d,\
     \"spec_txs_per_sec\":%.3f,\"hit_rate_pct\":%.3f,\"perfect\":%d,\
     \"imperfect\":%d,\"missed\":%d,\"unheard\":%d,\"cancelled\":%d,\
     \"requeued\":%d,\"merged\":%d,\"deduped\":%d,\"queue_high_water\":%d}"
    s.jobs s.drop_stale s.replay_wall_ns s.speculated s.spec_txs_per_sec s.hit_rate_pct
    s.perfect s.imperfect s.missed s.unheard s.cancelled s.requeued s.merged s.deduped
    s.high_water

let json_of_workload (pw : par_workload) =
  Printf.sprintf
    "{\"workload\":\"%s\",\"jobs\":%d,\"static_partition\":%b,\"blocks\":%d,\"txs\":%d,\
     \"aborted\":%d,\"forced\":%d,\"reruns\":%d,\"static_serial\":%d,\"ap_hits\":%d,\
     \"abort_rate_pct\":%.3f,\"seq_wall_ns\":%d,\"par_wall_ns\":%d,\"speedup\":%.3f,\
     \"roots_match\":%b}"
    pw.pw_name pw.pw_jobs pw.pw_static pw.pw_blocks pw.pw_txs pw.pw_aborted pw.pw_forced
    pw.pw_reruns pw.pw_static_serial pw.pw_ap_hits pw.pw_abort_rate_pct pw.pw_seq_wall_ns
    pw.pw_par_wall_ns pw.pw_speedup pw.pw_roots_match

let to_json c =
  Printf.sprintf
    "{%s,\"seq\":%s,\"par\":%s,\"drop_stale\":%s,\"throughput_ratio\":%.3f,\
     \"outcomes_match\":%b,\"blocks_match\":%b,\"parallel_blocks\":[%s]}"
    (meta_header ~experiment:"sched" ())
    (json_of_run c.seq) (json_of_run c.par) (json_of_run c.stale) c.throughput_ratio
    c.outcomes_match c.blocks_match
    (String.concat "," (List.map json_of_workload c.parallel))

(* Anchor an output artifact at the repo root — the nearest ancestor
   directory holding a dune-project — so `dune exec bench/main.exe` leaves
   BENCH_sched.json in the same place no matter where it was invoked from
   (the old cwd-relative path scattered or lost the file). *)
let at_repo_root file =
  let rec walk dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let up = Filename.dirname dir in
      if String.equal up dir then None else walk up
  in
  match walk (Sys.getcwd ()) with
  | Some root -> Filename.concat root file
  | None -> file

let write_json ~file c =
  let oc = open_out file in
  output_string oc (to_json c);
  output_char oc '\n';
  close_out oc
