(** The Forerunner node / emulator: replays a recorded observer feed under
    an execution policy, measuring every transaction's critical-path
    execution time and validating every block's state root (paper §5.2).

    Speculation (prediction, pre-execution, AP synthesis, prefetching)
    happens as transactions are heard and as blocks arrive, exactly like the
    live pipeline of Fig. 3; execution then uses the policy's fast path with
    an EVM fallback. *)

type policy =
  | Baseline  (** plain EVM execution, per-block StateDB with cold caches *)
  | Forerunner  (** constraint-based APs + memoization + prefetch *)
  | Perfect_match  (** traditional speculation, single predicted future *)
  | Perfect_multi  (** perfect matching over all predicted futures *)

val policy_name : policy -> string

type outcome =
  | O_unheard  (** not heard before its block arrived *)
  | O_missed  (** heard, but no usable AP / constraints unsatisfied *)
  | O_imperfect  (** AP hit; context differed from every speculated one *)
  | O_perfect  (** AP hit; context identical to a speculated one *)

type tx_record = {
  hash : string;
  kind : Workload.Gen.kind option;
  gas_used : int;
  heard : bool;
  outcome : outcome;
  exec_ns : int;  (** measured critical-path time for this transaction *)
  instrs_executed : int;
  instrs_skipped : int;  (** skipped via memoization shortcuts *)
  ap_paths : int;
  ap_futures : int;
  ap_contexts : int;
  ap_shortcuts : int;
  block_number : int64;
  canonical : bool;  (** executed as part of the canonical chain *)
}

type block_record = {
  number : int64;
  n_txs : int;
  gas_used : int;
  gas_limit : int;
  root_ok : bool;  (** recomputed state root matched the header *)
  canonical : bool;
  exec_ns : int;
}

type result = {
  policy : policy;
  txs : tx_record list;  (** execution order, side-chain blocks included *)
  blocks : block_record list;
  spec_total_ns : int;  (** off-critical-path speculation time *)
  spec_base_exec_ns : int;  (** plain-execution share of speculation *)
  spec_contexts : int;
  spec_build_errors : int;
  reorgs : int;  (** head switches onto a previously non-head branch *)
  fork_blocks : int;  (** temporary-fork blocks processed *)
  synth : Speculator.synth_acc;  (** summed per-path synthesis statistics *)
  sched : Sched.stats;  (** speculation scheduler accounting *)
  apstore : Apstore.stats option;
      (** template store accounting; [Some _] iff the store was enabled *)
}

type config = {
  max_contexts_initial : int;  (** futures pre-executed on first hearing *)
  max_contexts_respec : int;  (** futures per re-speculation *)
  max_respec_per_block : int;  (** pending txs re-speculated per new block *)
  validate_hits : bool;  (** cross-check every AP hit against the EVM *)
  use_memos : bool;  (** ablation: disable memoization shortcuts *)
  prefetch : bool;  (** ablation: disable StateDB warming *)
  seed : int;
  jobs : int;
      (** speculation worker domains; 1 (the default) runs every
          speculation inline at submission — the sequential pipeline *)
  use_apstore : bool;
      (** enable the shared template store (lib/apstore, DESIGN.md §13):
          speculation also builds input-lifted template APs, published
          once per call shape; execution serves them to structurally
          equivalent transactions that have no usable per-tx AP (off by
          default so the classic pipeline's outcomes are unchanged) *)
  drop_stale_spec : bool;
      (** async invalidation: on a head-extending block, cancel queued
          speculation for the included txs and requeue the rest against the
          new head, instead of completing the whole backlog first *)
}

val default_config : config

val single_future_config : config
(** The traditional one-prediction pipeline (multi-future ablation). *)

val is_speculative : policy -> bool

val replay : ?config:config -> policy:policy -> Netsim.Record.t -> result
(** Replay a recording under [policy].
    @raise Invalid_argument if any recomputed state root disagrees with a
    block header, or (with [validate_hits]) if an AP hit diverges from the
    EVM — either would be a correctness bug, never expected. *)
