(* The speculator (paper §4.3): pre-execute a transaction in each predicted
   future context with the instrumented EVM, synthesize one accelerated
   path per trace, and merge them into the transaction's AP.  The read set
   of each pre-execution feeds the prefetcher. *)

open State

(* Summed per-path synthesis statistics (for Fig. 15 / §5.5). *)
type synth_acc = {
  mutable paths_built : int;
  mutable sum : Sevm.Ir.stats;
}

let empty_acc () = { paths_built = 0; sum = Sevm.Ir.empty_stats }

let acc_add acc (s : Sevm.Ir.stats) =
  let t = acc.sum in
  acc.paths_built <- acc.paths_built + 1;
  acc.sum <-
    {
      Sevm.Ir.evm_trace_len = t.evm_trace_len + s.evm_trace_len;
      decomposed_added = t.decomposed_added + s.decomposed_added;
      stack_eliminated = t.stack_eliminated + s.stack_eliminated;
      mem_eliminated = t.mem_eliminated + s.mem_eliminated;
      control_eliminated = t.control_eliminated + s.control_eliminated;
      state_eliminated = t.state_eliminated + s.state_eliminated;
      const_folded = t.const_folded + s.const_folded;
      cse_removed = t.cse_removed + s.cse_removed;
      dead_removed = t.dead_removed + s.dead_removed;
      guards_added = t.guards_added + s.guards_added;
      constraint_len = t.constraint_len + s.constraint_len;
      fastpath_len = t.fastpath_len + s.fastpath_len;
    }

let acc_merge into from_ =
  into.paths_built <- into.paths_built + from_.paths_built;
  let a = into.sum and b = from_.sum in
  into.sum <-
    {
      Sevm.Ir.evm_trace_len = a.evm_trace_len + b.evm_trace_len;
      decomposed_added = a.decomposed_added + b.decomposed_added;
      stack_eliminated = a.stack_eliminated + b.stack_eliminated;
      mem_eliminated = a.mem_eliminated + b.mem_eliminated;
      control_eliminated = a.control_eliminated + b.control_eliminated;
      state_eliminated = a.state_eliminated + b.state_eliminated;
      const_folded = a.const_folded + b.const_folded;
      cse_removed = a.cse_removed + b.cse_removed;
      dead_removed = a.dead_removed + b.dead_removed;
      guards_added = a.guards_added + b.guards_added;
      constraint_len = a.constraint_len + b.constraint_len;
      fastpath_len = a.fastpath_len + b.fastpath_len;
    }

(* Everything Forerunner knows about one pending transaction. *)
type spec = {
  ap : Ap.Program.t;
  mutable paths : Sevm.Ir.path list; (* raw paths, for perfect-match checking *)
  mutable touches : Statedb.touch list; (* union of pre-execution read sets *)
  mutable ready_at : float; (* sim time when the AP became usable *)
  mutable contexts : int; (* distinct future contexts pre-executed *)
  mutable build_errors : int;
  mutable spec_time_ns : int; (* total time spent speculating, off critical path *)
  mutable base_exec_ns : int; (* time of the plain pre-executions (for §5.6) *)
  mutable spec_gas : int; (* gas burned by pre-executions (readiness cost model) *)
  synth : synth_acc;
  (* Template-store fields (lib/apstore).  [template_key] is written by the
     node on its own thread before the speculation job is submitted (the
     store's single-flight reservation); a worker that holds it builds a
     second, template-mode path per context into a fresh program and
     publishes the pointer through [template_ready] as its last act on
     that program — after the write the program is immutable, so the node
     thread can hand whatever version it observes to the store. *)
  mutable template_key : string option;
  mutable template_ready : Ap.Program.t option;
  mutable template_published : bool; (* node thread only *)
}

let create_spec () =
  {
    ap = Ap.Program.create ();
    paths = [];
    touches = [];
    ready_at = infinity;
    contexts = 0;
    build_errors = 0;
    spec_time_ns = 0;
    base_exec_ns = 0;
    spec_gas = 0;
    synth = empty_acc ();
    template_key = None;
    template_ready = None;
    template_published = false;
  }

let max_paths_kept = 16

let obs_contexts = Obs.counter "speculator.contexts_built"
let obs_build_errors = Obs.counter "speculator.build_errors"
let obs_paths = Obs.counter "speculator.paths_synthesized"
let obs_build_ns = Obs.histogram "speculator.context_build_ns"
let obs_tmpl_paths = Obs.counter "speculator.template_paths"
let obs_tmpl_errors = Obs.counter "speculator.template_errors"

(* Pre-execute [tx] in one future context and fold the result into [spec].
   [bk]/[root] give the chain head state; [pre_txs] are the predicted
   preceding transactions.  When [tmpl] is given, the same trace is also
   lifted into a template path (input registers instead of baked tx
   constants) and merged into it. *)
let speculate_one ~tmpl spec bk ~root (env : Evm.Env.block_env) ~pre_txs (tx : Evm.Env.tx) =
  let (), elapsed =
    Clock.time (fun () ->
        let st = Statedb.create bk ~root in
        List.iter
          (fun t ->
            let (r : Evm.Processor.receipt) = Evm.Processor.execute_tx st env t in
            spec.spec_gas <- spec.spec_gas + r.gas_used)
          pre_txs;
        (* capture the target's read set for the prefetcher *)
        Statedb.set_tracking st true;
        Statedb.clear_touches st;
        let snap = Statedb.snapshot st in
        let sink, get = Evm.Trace.collector () in
        let (receipt : Evm.Processor.receipt), base_ns =
          Clock.time (fun () -> Evm.Processor.execute_tx ~trace:sink st env tx)
        in
        spec.base_exec_ns <- spec.base_exec_ns + base_ns;
        spec.spec_gas <- spec.spec_gas + receipt.gas_used;
        Statedb.revert st snap;
        Statedb.set_tracking st false;
        spec.touches <- Statedb.touches st @ spec.touches;
        spec.contexts <- spec.contexts + 1;
        Obs.incr obs_contexts;
        let events = get () in
        (match Sevm.Builder.build tx env events receipt st with
        | Ok path ->
          acc_add spec.synth path.stats;
          Ap.Program.add_path spec.ap path;
          Obs.incr obs_paths;
          if List.length spec.paths < max_paths_kept then spec.paths <- spec.paths @ [ path ]
        | Error _ ->
          spec.build_errors <- spec.build_errors + 1;
          Obs.incr obs_build_errors);
        match tmpl with
        | None -> ()
        | Some tp -> (
          (* second pass over the same trace, tx fields lifted to inputs *)
          match Sevm.Builder.build ~template:true tx env events receipt st with
          | Ok path ->
            Ap.Program.add_path tp path;
            Obs.incr obs_tmpl_paths
          | Error _ -> Obs.incr obs_tmpl_errors))
  in
  Obs.observe_int obs_build_ns elapsed;
  spec.spec_time_ns <- spec.spec_time_ns + elapsed

(* Readiness cost model: the AP becomes usable once the speculation work
   completes after [now], where "work" is the gas the pre-executions burned
   at a fixed modelled execution speed (20M gas/s, the ballpark of geth on
   the paper's testbed).  Gas, not measured wall time: readiness in
   *simulated* time must be a function of the work, not of the replaying
   host's instantaneous load — otherwise a contended host (or the worker
   domains of `--jobs N`) would flip hit/miss outcomes and replays would
   not be reproducible across machines.  Wall time is still measured into
   [spec_time_ns]/[base_exec_ns] for the §5.6 overhead accounting. *)
let ns_per_gas = 50.0

let speculate spec bk ~root ~now contexts tx =
  let g0 = spec.spec_gas in
  (* Build the template once per entry (the first job that gets this far):
     one template per key is all the store keeps, and the first version is
     as good as any — every same-key transaction it serves re-binds the
     lifted inputs anyway.  The fresh program is published through
     [template_ready] only after its last [add_path], so readers never see
     a program that is still being mutated. *)
  let tmpl =
    if spec.template_key <> None && spec.template_ready = None then
      Some (Ap.Program.create ())
    else None
  in
  List.iter (fun (env, pre_txs) -> speculate_one ~tmpl spec bk ~root env ~pre_txs tx) contexts;
  (match tmpl with
  | Some tp when tp.roots <> [] -> spec.template_ready <- Some tp
  | Some _ | None -> ());
  let elapsed_s = float_of_int (spec.spec_gas - g0) *. ns_per_gas /. 1e9 in
  let candidate = now +. elapsed_s in
  if candidate < spec.ready_at then spec.ready_at <- candidate
  else spec.ready_at <- min spec.ready_at candidate
