(** Parallel-speculation benchmark: replay the same recorded traffic under
    the Forerunner policy with [jobs = 1] and [jobs = N] and compare —
    speculation throughput should scale with workers while every
    speculation-visible result (per-tx outcomes, gas, block roots) stays
    identical.  A third replay in drop-stale mode exercises the
    invalidation protocol (cancelled / requeued counters) at scale.

    The comparison also measures conflict-aware {e parallel block apply}
    ({!Chain.Stf.apply_txs_parallel}) on three pure-workload recordings:
    disjoint ETH transfers (barely any conflicts), AMM swaps against one
    pair (serialized on the reserves: conflicts galore) and the default
    mix.  Each block's parallel state root is checked byte-identical to the
    sequential apply and to the miner's header root. *)

type run_stats = {
  jobs : int;
  drop_stale : bool;
  replay_wall_ns : int;
  speculated : int;  (** speculation jobs completed *)
  spec_txs_per_sec : float;  (** completed jobs per replay wall second *)
  hit_rate_pct : float;  (** AP hits among heard transactions *)
  perfect : int;
  imperfect : int;
  missed : int;
  unheard : int;
  cancelled : int;
  requeued : int;
  merged : int;
  deduped : int;  (** redundant submissions skipped by the dedupe memo *)
  high_water : int;
}

type par_workload = {
  pw_name : string;  (** ["transfer"], ["amm"] or ["mixed"] *)
  pw_jobs : int;
  pw_static : bool;  (** lib/bca static pre-partitioning enabled *)
  pw_blocks : int;
  pw_txs : int;
  pw_aborted : int;  (** commits aborted on read/write conflicts *)
  pw_forced : int;  (** forced sequential reruns (coinbase patterns) *)
  pw_reruns : int;
  pw_static_serial : int;
      (** transactions the static partitioner kept out of speculation *)
  pw_ap_hits : int;  (** speculative executions through the AP fast path *)
  pw_abort_rate_pct : float;  (** (aborted + forced) / txs *)
  pw_seq_wall_ns : int;
  pw_par_wall_ns : int;
  pw_speedup : float;  (** sequential wall / parallel wall (needs cores) *)
  pw_roots_match : bool;  (** every root ≡ sequential ≡ header *)
}

type comparison = {
  seq : run_stats;  (** jobs = 1 *)
  par : run_stats;  (** jobs = N, barrier semantics *)
  stale : run_stats;  (** jobs = N, keep-latest invalidation *)
  throughput_ratio : float;  (** par.spec_txs_per_sec / seq.spec_txs_per_sec *)
  outcomes_match : bool;
      (** per-tx (hash, outcome, gas) sequences of [seq] and [par] are equal *)
  blocks_match : bool;
      (** per-block (number, root validated) sequences of [seq] and [par] *)
  parallel : par_workload list;  (** conflict-aware block apply, per workload *)
}

val run_parallel_blocks :
  ?with_ap:bool ->
  ?static_partition:bool ->
  jobs:int ->
  name:string ->
  Netsim.Record.t ->
  par_workload
(** Apply every canonical block of the recording sequentially and in
    parallel (jobs workers, APs pre-built per block unless
    [with_ap:false]), asserting root identity and accumulating
    abort/rerun/speedup numbers.  [static_partition] (default off)
    forwards to {!Chain.Stf.apply_txs_parallel}. *)

val parallel_suite :
  ?with_ap:bool -> ?scale:float -> jobs:int -> unit -> par_workload list
(** The transfer / amm / mixed workload sweep ([scale] shrinks the
    simulated duration like [FORERUNNER_SCALE]).  Each workload record is
    applied twice — static pre-partitioning off, then on — so the pair's
    abort/rerun counts are directly comparable on identical blocks. *)

val compare_jobs :
  ?config:Node.config -> ?par_suite:bool -> jobs:int -> Netsim.Record.t -> comparison
(** [config] defaults to {!Node.default_config}; its [jobs]/[drop_stale_spec]
    fields are overridden per run.  [par_suite] (default true) also runs
    {!parallel_suite} and fills [comparison.parallel]. *)

val print : comparison -> unit
(** Human-readable comparison table on stdout. *)

val to_json : comparison -> string
(** The full comparison as one JSON object, opening with the shared
    artifact header ({!meta_header}, experiment ["sched"]). *)

val schema_version : int
(** Version stamp every BENCH_*.json artifact opens with; bump on any
    incompatible field change in any artifact. *)

val meta_header : ?extra:(string * string) list -> experiment:string -> unit -> string
(** The shared run-metadata fields (no surrounding braces):
    [schema_version], [experiment], the active fork name, then any
    [extra] key/value pairs (values must already be JSON-encoded). *)

val validate_header : experiment:string -> string -> (unit, string) result
(** Check that the file at the given path opens with the exact
    {!meta_header} prefix for [experiment]. *)

val at_repo_root : string -> string
(** Resolve a filename against the repo root (nearest ancestor of the cwd
    with a [dune-project]); falls back to the name itself outside a repo. *)

val write_json : file:string -> comparison -> unit
