(** Parallel-speculation benchmark: replay the same recorded traffic under
    the Forerunner policy with [jobs = 1] and [jobs = N] and compare —
    speculation throughput should scale with workers while every
    speculation-visible result (per-tx outcomes, gas, block roots) stays
    identical.  A third replay in drop-stale mode exercises the
    invalidation protocol (cancelled / requeued counters) at scale. *)

type run_stats = {
  jobs : int;
  drop_stale : bool;
  replay_wall_ns : int;
  speculated : int;  (** speculation jobs completed *)
  spec_txs_per_sec : float;  (** completed jobs per replay wall second *)
  hit_rate_pct : float;  (** AP hits among heard transactions *)
  perfect : int;
  imperfect : int;
  missed : int;
  unheard : int;
  cancelled : int;
  requeued : int;
  merged : int;
  high_water : int;
}

type comparison = {
  seq : run_stats;  (** jobs = 1 *)
  par : run_stats;  (** jobs = N, barrier semantics *)
  stale : run_stats;  (** jobs = N, drop-stale invalidation *)
  throughput_ratio : float;  (** par.spec_txs_per_sec / seq.spec_txs_per_sec *)
  outcomes_match : bool;
      (** per-tx (hash, outcome, gas) sequences of [seq] and [par] are equal *)
  blocks_match : bool;
      (** per-block (number, root validated) sequences of [seq] and [par] *)
}

val compare_jobs : ?config:Node.config -> jobs:int -> Netsim.Record.t -> comparison
(** [config] defaults to {!Node.default_config}; its [jobs]/[drop_stale_spec]
    fields are overridden per run. *)

val print : comparison -> unit
(** Human-readable comparison table on stdout. *)

val to_json : comparison -> string

val write_json : file:string -> comparison -> unit
