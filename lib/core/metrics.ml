(* Analysis of replay results into the paper's tables and figures.

   Speedups are per-transaction ratios against a baseline replay of the same
   recorded traffic, exactly as the paper pairs a Forerunner node with the
   official geth on identical traffic:
   - effective speedup: mean per-tx speedup over heard transactions (§5.3);
   - end-to-end speedup: mean over all transactions;
   - weighted percentages weight each transaction by its baseline execution
     time (the paper's "% weighted"). *)

type joined = {
  t : Node.tx_record;
  base_ns : int; (* baseline execution time of the same tx *)
}

(* Pair a policy run with the baseline run over tx hashes. *)
let join ~(baseline : Node.result) (run : Node.result) : joined list =
  let base = Hashtbl.create 4096 in
  List.iter
    (fun (t : Node.tx_record) -> if t.canonical then Hashtbl.replace base t.hash t.exec_ns)
    baseline.txs;
  List.filter_map
    (fun (t : Node.tx_record) ->
      if not t.canonical then None
      else
        match Hashtbl.find_opt base t.hash with
        | Some b when b > 0 && t.exec_ns > 0 -> Some { t; base_ns = b }
        | Some _ | None -> None)
    run.txs

let speedup j = float_of_int j.base_ns /. float_of_int j.t.exec_ns
let is_hit j = match j.t.outcome with Node.O_perfect | Node.O_imperfect -> true | Node.O_missed | Node.O_unheard -> false
let mean = function [] -> 0.0 | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
let fsum = List.fold_left ( +. ) 0.0
let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

(* Time-weighted percentage: fraction of total baseline time covered. *)
let weighted_pct part whole =
  let w l = fsum (List.map (fun j -> float_of_int j.base_ns) l) in
  if whole = [] then 0.0 else 100.0 *. w part /. w whole

(* ---- Table 2 rows ---- *)

type policy_summary = {
  name : string;
  effective_speedup : float; (* heard txs *)
  e2e_speedup : float; (* all txs *)
  satisfied_pct : float; (* hits / heard *)
  satisfied_weighted_pct : float;
  hits : int;
  heard : int;
  total : int;
}

let summarize ~baseline (run : Node.result) =
  let js = join ~baseline run in
  let heard = List.filter (fun j -> j.t.heard) js in
  let hits = List.filter is_hit heard in
  {
    name = Node.policy_name run.policy;
    effective_speedup = mean (List.map speedup heard);
    e2e_speedup = mean (List.map speedup js);
    satisfied_pct = pct (List.length hits) (List.length heard);
    satisfied_weighted_pct = weighted_pct hits heard;
    hits = List.length hits;
    heard = List.length heard;
    total = List.length js;
  }

(* ---- Table 3: breakdown by prediction outcome ---- *)

type outcome_row = { label : string; tx_pct : float; weighted : float; speedup_ : float }

let outcome_breakdown ~baseline (run : Node.result) =
  let js = join ~baseline run in
  let heard = List.filter (fun j -> j.t.heard) js in
  let bucket o = List.filter (fun j -> j.t.outcome = o) heard in
  let row label l =
    {
      label;
      tx_pct = pct (List.length l) (List.length heard);
      weighted = weighted_pct l heard;
      speedup_ = mean (List.map speedup l);
    }
  in
  [ row "satisfied/perfect" (bucket Node.O_perfect);
    row "satisfied/imperfect" (bucket Node.O_imperfect);
    row "unsatisfied/missed" (bucket Node.O_missed) ]

(* ---- Fig. 12: per-tx speedup distribution over heard txs ---- *)

let speedup_histogram ~baseline (run : Node.result) ~bucket_width ~max_bucket =
  let js = List.filter (fun j -> j.t.heard) (join ~baseline run) in
  let n_buckets = (max_bucket / bucket_width) + 2 in
  let counts = Array.make n_buckets 0 in
  List.iter
    (fun j ->
      let s = speedup j in
      let b =
        if s < 1.0 then 0
        else if s >= float_of_int max_bucket then n_buckets - 1
        else 1 + (int_of_float s / bucket_width)
      in
      counts.(b) <- counts.(b) + 1)
    js;
  (counts, List.length js)

(* ---- Fig. 13: gas used vs average speedup (hits only) ---- *)

let gas_speedup_buckets ~baseline (run : Node.result) =
  let js = List.filter is_hit (join ~baseline run) in
  (* logarithmic gas buckets *)
  let bucket_of g =
    let rec go b lim = if g < lim || b >= 8 then b else go (b + 1) (lim * 2) in
    go 0 30_000
  in
  let table = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let b = bucket_of j.t.gas_used in
      let speeds, count = match Hashtbl.find_opt table b with Some x -> x | None -> (0.0, 0) in
      Hashtbl.replace table b (speeds +. speedup j, count + 1))
    js;
  List.sort compare (Hashtbl.fold (fun b (s, c) acc -> (b, s /. float_of_int c, c) :: acc) table [])

let gas_bucket_label b =
  let lo = if b = 0 then 0 else 30_000 * (1 lsl (b - 1)) in
  let hi = 30_000 * (1 lsl b) in
  if b >= 8 then Printf.sprintf ">=%d" lo else Printf.sprintf "%d-%d" lo hi

(* ---- Fig. 11: reverse CDF of heard delay ---- *)

let heard_delay_rcdf (record : Netsim.Record.t) ~points =
  let _, _, delays = Netsim.Record.heard_stats record in
  let n = List.length delays in
  let sorted = Array.of_list (List.sort compare delays) in
  (* binary search for the first delay > xf: everything after it exceeds the
     threshold, so each point costs O(log n) instead of a full scan *)
  let first_above xf =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) > xf then hi := mid else lo := mid + 1
    done;
    !lo
  in
  List.map
    (fun x ->
      let xf = float_of_int x in
      (x, 100.0 *. float_of_int (n - first_above xf) /. float_of_int (max 1 n)))
    points

(* ---- Table 1 rows ---- *)

type dataset_row = {
  tag : string;
  blocks : int;
  tx_count : int;
  heard_pct : float;
  heard_weighted_pct : float;
}

let dataset_summary ~tag (record : Netsim.Record.t) (baseline : Node.result) =
  let canon = List.filter (fun (t : Node.tx_record) -> t.canonical) baseline.txs in
  let heard = List.filter (fun (t : Node.tx_record) -> t.heard) canon in
  let w l = fsum (List.map (fun (t : Node.tx_record) -> float_of_int t.exec_ns) l) in
  {
    tag;
    blocks = record.n_blocks;
    tx_count = record.n_txs;
    heard_pct = pct (List.length heard) (List.length canon);
    heard_weighted_pct = (if canon = [] then 0.0 else 100.0 *. w heard /. w canon);
  }

(* ---- Fig. 15: code reduction during AP synthesis ---- *)

type synthesis_report = {
  n_paths : int;
  avg_trace_len : float;
  (* all the following as a percentage of the EVM trace length, like the
     paper's waterfall *)
  pct_stack : float;
  pct_mem : float;
  pct_control : float;
  pct_state : float;
  pct_decomposed : float;
  pct_folded : float;
  pct_cse : float;
  pct_dead : float;
  pct_guards : float;
  pct_sevm : float; (* size after conversion, before optimization *)
  pct_ap : float; (* final AP path size *)
  pct_constraint : float;
  pct_fastpath : float;
  avg_ap_len : float;
}

let synthesis_report (run : Node.result) =
  let s = run.synth.sum in
  let n = max 1 run.synth.paths_built in
  let tl = float_of_int (max 1 s.evm_trace_len) in
  let p x = 100.0 *. float_of_int x /. tl in
  let ap_len = s.constraint_len + s.fastpath_len in
  {
    n_paths = run.synth.paths_built;
    avg_trace_len = float_of_int s.evm_trace_len /. float_of_int n;
    pct_stack = p s.stack_eliminated;
    pct_mem = p s.mem_eliminated;
    pct_control = p s.control_eliminated;
    pct_state = p s.state_eliminated;
    pct_decomposed = p s.decomposed_added;
    pct_folded = p s.const_folded;
    pct_cse = p s.cse_removed;
    pct_dead = p s.dead_removed;
    pct_guards = p s.guards_added;
    pct_sevm =
      p (ap_len + s.dead_removed + s.const_folded + s.cse_removed - s.guards_added);
    pct_ap = p ap_len;
    pct_constraint = p s.constraint_len;
    pct_fastpath = p s.fastpath_len;
    avg_ap_len = float_of_int ap_len /. float_of_int n;
  }

(* ---- §5.5 distributions ---- *)

type ap_shape = {
  paths_1 : float;
  paths_2 : float;
  paths_3 : float;
  paths_more : float;
  paths_more_avg : float;
  ctx_1 : float;
  ctx_2 : float;
  ctx_3 : float;
  ctx_more : float;
  ctx_more_avg : float;
  avg_shortcuts : float;
  skip_pct : float; (* S-EVM instructions skipped on the critical path *)
}

let ap_shape (run : Node.result) =
  (* canonical only, like [join]: a transaction executed again on a fork
     branch would otherwise be double-counted and skew the §5.5 shares *)
  let heard =
    List.filter
      (fun (t : Node.tx_record) -> t.canonical && t.heard && t.ap_futures > 0)
      run.txs
  in
  let n = max 1 (List.length heard) in
  let frac f = pct (List.length (List.filter f heard)) n in
  let more_avg get =
    let l = List.filter (fun t -> get t > 3) heard in
    mean (List.map (fun t -> float_of_int (get t)) l)
  in
  let hits =
    List.filter
      (fun (t : Node.tx_record) -> t.canonical && t.instrs_executed + t.instrs_skipped > 0)
      run.txs
  in
  let skipped = List.fold_left (fun a (t : Node.tx_record) -> a + t.instrs_skipped) 0 hits in
  let executed = List.fold_left (fun a (t : Node.tx_record) -> a + t.instrs_executed) 0 hits in
  {
    paths_1 = frac (fun t -> t.ap_paths = 1);
    paths_2 = frac (fun t -> t.ap_paths = 2);
    paths_3 = frac (fun t -> t.ap_paths = 3);
    paths_more = frac (fun t -> t.ap_paths > 3);
    paths_more_avg = more_avg (fun (t : Node.tx_record) -> t.ap_paths);
    ctx_1 = frac (fun t -> t.ap_contexts = 1);
    ctx_2 = frac (fun t -> t.ap_contexts = 2);
    ctx_3 = frac (fun t -> t.ap_contexts = 3);
    ctx_more = frac (fun t -> t.ap_contexts > 3);
    ctx_more_avg = more_avg (fun (t : Node.tx_record) -> t.ap_contexts);
    avg_shortcuts = mean (List.map (fun (t : Node.tx_record) -> float_of_int t.ap_shortcuts) heard);
    skip_pct = pct skipped (skipped + executed);
  }

(* ---- §5.6 off-critical-path overhead ---- *)

type overhead = {
  spec_to_exec_ratio : float; (* speculation time per context / plain exec *)
  spec_total_ms : float;
  contexts_total : int;
  build_errors : int;
  heap_mb : float;
}

let overhead (run : Node.result) =
  let gc = Gc.quick_stat () in
  {
    spec_to_exec_ratio =
      (if run.spec_base_exec_ns = 0 then 0.0
       else float_of_int run.spec_total_ns /. float_of_int run.spec_base_exec_ns);
    spec_total_ms = float_of_int run.spec_total_ns /. 1e6;
    contexts_total = run.spec_contexts;
    build_errors = run.spec_build_errors;
    heap_mb = float_of_int gc.heap_words *. 8.0 /. 1e6;
  }
