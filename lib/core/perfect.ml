(* Traditional speculative execution, for the paper's baselines (Table 2):
   a speculated execution may be used only when the actual context matches
   the speculated one perfectly — operationally, when every context read
   returns exactly the value seen during speculation.  Then the memoized
   results commit verbatim; otherwise the transaction re-executes in full.

   Reads determine everything else (the transaction body is fixed), so
   checking reads is checking the whole context.

   One read is exempt: the COINBASE read that exists only to route the
   miner-fee payment.  Like geth's finalization, the fee transfer is applied
   against the actual coinbase at commit time; it is bookkeeping, not
   context (paper footnote 7 omits miner-balance accounting from read/write
   sets for the same reason). *)

open State
module I = Sevm.Ir

(* Registers whose only role is addressing a fee-style balance delta. *)
let fee_only_reg (path : I.path) r =
  (not (Array.exists (fun ins -> List.mem r (I.instr_uses ins)) path.instrs))
  && (not (List.exists (fun p -> List.mem r (I.piece_regs p)) path.output))
  && List.for_all
       (fun w ->
         match w with
         | I.W_balance_add (_, I.Reg r') when r' = r -> false
         | I.W_balance_add (_, (I.Reg _ | I.Const _)) -> true
         | other -> not (List.mem r (I.write_uses other)))
       path.writes

let is_coinbase_read = function I.R_coinbase -> true | _ -> false

(* Walk the reads of [path] against the actual context.  Returns a register
   file with actual values for exempt reads when everything else matches. *)
let check_reads (path : I.path) st benv : U256.t array option =
  let regs = Array.copy path.reg_values in
  let ok = ref true in
  Array.iter
    (fun ins ->
      match ins with
      | I.Read (r, src) when !ok ->
        let actual = Ap.Exec.eval_read st benv regs src in
        if is_coinbase_read src && fee_only_reg path r then regs.(r) <- actual
        else if not (U256.equal actual path.reg_values.(r)) then ok := false
      (* Guard_warm is not a context read: entry warmth is a function of the
         transaction and its prewarm list, and this baseline runs
         speculation and commit with the same (empty) prewarm, so the
         constraint holds whenever it held during speculation. *)
      | I.Read _ | I.Compute _ | I.Keccak _ | I.Sha256 _ | I.Pack _ | I.Guard _
      | I.Guard_size _ | I.Guard_warm _ -> ())
    path.instrs;
  if !ok then Some regs else None

(* Try to commit [path] against the actual context.  Returns the receipt on
   a perfect match. *)
let try_path (path : I.path) st (benv : Evm.Env.block_env) (tx : Evm.Env.tx) :
    Evm.Processor.receipt option =
  match check_reads path st benv with
  | None -> None
  | Some regs ->
    let sender_balance_before = Statedb.get_balance st tx.sender in
    let sender_nonce_before = Statedb.get_nonce st tx.sender in
    let logs = Ap.Exec.apply_writes st regs path.writes in
    Some
      {
        Evm.Processor.status = path.status;
        gas_used = path.gas_used;
        gas_refund = path.gas_refund;
        output = I.bytes_of_pieces regs path.output;
        logs;
        contract_address = None;
        sender_balance_before;
        sender_nonce_before;
      }

(* Multi-future perfect matching: first matching speculated context wins. *)
let try_paths paths st benv tx =
  let rec go = function
    | [] -> None
    | p :: rest -> ( match try_path p st benv tx with Some r -> Some r | None -> go rest)
  in
  go paths

(* Whether the actual context is identical to one speculated for [path] —
   used to split AP hits into perfect vs imperfect (Table 3). *)
let context_matches (path : I.path) st benv = check_reads path st benv <> None
