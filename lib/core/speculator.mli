(** The speculator (paper §4.3): pre-execute a pending transaction in each
    predicted future context with the instrumented EVM, synthesize one
    accelerated path per trace and merge them into the transaction's AP;
    capture the read sets for the prefetcher. *)

(** Summed per-path synthesis statistics (Fig. 15 / §5.5). *)
type synth_acc = { mutable paths_built : int; mutable sum : Sevm.Ir.stats }

val empty_acc : unit -> synth_acc
val acc_add : synth_acc -> Sevm.Ir.stats -> unit
val acc_merge : synth_acc -> synth_acc -> unit

(** Everything Forerunner knows about one pending transaction. *)
type spec = {
  ap : Ap.Program.t;
  mutable paths : Sevm.Ir.path list;  (** raw paths, for perfect matching *)
  mutable touches : State.Statedb.touch list;  (** union of read sets *)
  mutable ready_at : float;  (** sim time when the AP became usable *)
  mutable contexts : int;  (** future contexts pre-executed so far *)
  mutable build_errors : int;  (** traces specialization couldn't cover *)
  mutable spec_time_ns : int;  (** wall time spent speculating *)
  mutable base_exec_ns : int;  (** plain-execution share (for §5.6) *)
  mutable spec_gas : int;  (** gas burned pre-executing (readiness model) *)
  synth : synth_acc;
  mutable template_key : string option;
      (** lib/apstore single-flight reservation held by this entry; set by
          the node (producer thread) before submission.  [Some _] asks the
          speculation job to also build a template-mode AP. *)
  mutable template_ready : Ap.Program.t option;
      (** the finished template, written once by the worker as its last
          action on the program — immutable afterwards, so the node thread
          may publish whichever version it observes *)
  mutable template_published : bool;  (** node thread only *)
}

val create_spec : unit -> spec

val speculate :
  spec ->
  State.Statedb.Backend.t ->
  root:string ->
  now:float ->
  (Evm.Env.block_env * Evm.Env.tx list) list ->
  Evm.Env.tx ->
  unit
(** Pre-execute [tx] in every given future context against the chain head
    at [root], folding results into [spec].  The AP becomes ready once the
    speculation work completes after [now], under a deterministic cost
    model (gas burned at a fixed modelled execution speed) so replay
    outcomes are reproducible across hosts and across [--jobs] settings. *)
