(** Synthetic transaction traffic with an Ethereum-2021-flavoured mix.

    Gas prices are drawn from a small set of popular levels, so price ties
    abound — exactly what makes miner orderings diverge (paper footnote 8).
    Oracle submissions depend on the block timestamp and interfere with one
    another; registry names and auction bids race on purpose; the worker
    contract supplies the high-gas tail. *)

type kind =
  | Eth_transfer
  | Erc20_transfer
  | Amm_swap
  | Oracle_submit
  | Erc20_approve
  | Registry_register
  | Counter_poke
  | Heavy_work
  | Auction_bid
  | Deploy

val kind_name : kind -> string

type mix = (kind * float) list
(** Kind weights; they should sum to 1. *)

val default_mix : mix
val defi_mix : mix
(** A DeFi-heavier variant used by dataset R3. *)

type t

val create : ?mix:mix -> seed:int -> tx_rate:float -> Population.t -> t
(** All randomness flows from [seed] through an explicit [Random.State.t]:
    no [Random.self_init], no ambient generator, no wall clock.  Two
    generators created with equal arguments emit identical transaction
    streams — the determinism regression test in [test_workload.ml] pins
    this down, and CLI runs are reproducible from [--seed] alone. *)

val generate : t -> now:int64 -> Evm.Env.tx * kind
(** Produce the next transaction (with a fresh per-sender nonce) as of
    simulation time [now] (epoch seconds; selects the oracle round). *)

val next_interarrival : t -> float
(** Exponential inter-arrival sample at the configured rate. *)
