(** Airdrop-storm traffic for the lib/apstore template cache: many distinct
    senders each calling [transfer] on one ERC-20 contract, with calldata
    shaped so every transaction in the storm shares a single template key
    (constant length, selector, nonzero-byte count, value zeroness and gas
    limit) while sender, recipient, amount, nonce and gas price all vary. *)

open State

type t

val create : ?n_senders:int -> seed:int -> token:Address.t -> unit -> t
(** Senders are deterministic [Address.of_int]-shaped accounts (base
    [0x500000], disjoint from [Population]'s users/observers). *)

val gas_limit : int
(** The fixed gas limit every storm transaction carries (part of the
    template key). *)

val genesis : t -> Statedb.Backend.t -> string
(** Standalone genesis: install the ERC-20 at [token], fund every sender
    with ETH and tokens; returns the committed root. *)

val fund : t -> Statedb.t -> unit
(** Seed the senders (ETH + token balances) into an existing uncommitted
    state — composes with [Population.genesis]. *)

val tx : t -> Evm.Env.tx
(** The next storm transaction: round-robin sender, fresh all-nonzero-byte
    recipient, fresh two-nonzero-byte amount, correct per-sender nonce. *)
