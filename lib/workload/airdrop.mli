(** Airdrop-storm traffic for the lib/apstore template cache: many distinct
    senders each calling [transfer] on one ERC-20 contract, with calldata
    shaped so every transaction in the storm shares a single template key
    (constant length, selector, value zeroness, nonzero branch-relevant
    amount word) while sender, recipient, amount, nonce, gas price and gas
    limit all vary — the gas fields ride the lifted input registers. *)

open State

type t

val create : ?n_senders:int -> seed:int -> token:Address.t -> unit -> t
(** Senders are deterministic [Address.of_int]-shaped accounts (base
    [0x500000], disjoint from [Population]'s users/observers). *)

val gas_limit : int
(** The storm's smallest gas limit: a template traced at this envelope
    serves every level in {!gas_limit_levels} (the builder's envelope
    guard accepts any served limit at least as generous). *)

val gas_limit_levels : int array
(** The heterogeneous per-transaction limits {!tx} draws from;
    [gas_limit_levels.(0) = gas_limit] is the minimum. *)

val genesis : t -> Statedb.Backend.t -> string
(** Standalone genesis: install the ERC-20 at [token], fund every sender
    with ETH and tokens; returns the committed root. *)

val fund : t -> Statedb.t -> unit
(** Seed the senders (ETH + token balances) into an existing uncommitted
    state — composes with [Population.genesis]. *)

val tx : t -> Evm.Env.tx
(** The next storm transaction: round-robin sender, fresh all-nonzero-byte
    recipient, fresh two-nonzero-byte amount, correct per-sender nonce. *)
