(* Airdrop-storm traffic: a crowd of distinct senders all calling
   `transfer(to, amount)` on one ERC-20 contract.  Every transaction is
   structurally identical — same target, selector, calldata length and
   value zeroness — so the whole storm maps to a single lib/apstore
   template key while the caller-varying fields (sender, recipient,
   amount, nonce, gas price, gas limit) exercise the template's lifted
   input registers.

   Gas limits are deliberately heterogeneous: with gas accounting lifted
   into input registers (and the ERC-20 free of GAS opcodes, so lib/bca
   lets the key drop the gas pins), one template built from a
   minimum-envelope trace serves every limit level.  Recipients are drawn
   with all-nonzero address bytes so the template's sender/recipient
   balance-slot aliasing guards stay satisfied, and amounts keep the
   branch-relevant amount word nonzero (its zeroness is key-pinned). *)

open State

type t = {
  senders : Address.t array;
  token : Address.t;
  rng : Random.State.t;
  nonces : int Address.Tbl.t;
  mutable cursor : int; (* round-robin sender index *)
}

let sender_base = 0x500000

(* The storm's smallest limit — templates traced at this envelope serve
   every other level (the builder's envelope guard is monotone). *)
let gas_limit = 60_000
let gas_limit_levels = [| 60_000; 66_000; 72_000; 84_000 |]

let create ?(n_senders = 256) ~seed ~token () =
  {
    senders = Array.init n_senders (fun i -> Address.of_int (sender_base + i));
    token;
    rng = Random.State.make [| seed; 0xA12D |];
    nonces = Address.Tbl.create (max 16 n_senders);
    cursor = 0;
  }

let ether = U256.of_string "1000000000000000000"

(* Build the genesis state for a standalone storm: the token contract plus
   ETH and token balances for every sender; returns the committed root. *)
let genesis t bk =
  let st = Statedb.create bk ~root:Statedb.empty_root in
  Contracts.Deploy.install_code st t.token Contracts.Erc20.code;
  Array.iter
    (fun s ->
      Statedb.set_balance st s (U256.mul (U256.of_int 100) ether);
      Contracts.Deploy.seed_erc20_balance st ~token:t.token ~owner:s
        ~amount:(U256.of_int 10_000_000))
    t.senders;
  Statedb.commit st

(* Seed the senders into an already-populated state (composes with
   [Population.genesis], whose token0/token1 the storm can then target). *)
let fund t st =
  Array.iter
    (fun s ->
      Statedb.set_balance st s (U256.mul (U256.of_int 100) ether);
      Contracts.Deploy.seed_erc20_balance st ~token:t.token ~owner:s
        ~amount:(U256.of_int 10_000_000))
    t.senders

(* A recipient whose 20 address bytes are all nonzero; never collides with
   the [of_int]-shaped sender addresses (those embed zero bytes), so the
   template's sender/recipient balance-slot aliasing guards stay satisfied. *)
let fresh_recipient t =
  Address.of_bytes (String.init 20 (fun _ -> Char.chr (1 + Random.State.int t.rng 255)))

(* Exactly two nonzero bytes, both in the low word. *)
let fresh_amount t =
  U256.of_int (((1 + Random.State.int t.rng 255) * 256) + 1 + Random.State.int t.rng 255)

let gas_price_levels = [| 50; 60; 60; 80; 80; 100; 100; 120 |]

let next_nonce t sender =
  let n = match Address.Tbl.find_opt t.nonces sender with Some n -> n | None -> 0 in
  Address.Tbl.replace t.nonces sender (n + 1);
  n

let tx t : Evm.Env.tx =
  let sender = t.senders.(t.cursor mod Array.length t.senders) in
  t.cursor <- t.cursor + 1;
  {
    Evm.Env.sender;
    to_ = Some t.token;
    nonce = next_nonce t sender;
    value = U256.zero;
    data = Contracts.Erc20.transfer_call ~to_:(fresh_recipient t) ~amount:(fresh_amount t);
    gas_limit = gas_limit_levels.(Random.State.int t.rng (Array.length gas_limit_levels));
    gas_price =
      U256.of_int
        (1_000_000_000
        * gas_price_levels.(Random.State.int t.rng (Array.length gas_price_levels)));
  }
