(* Dead-code elimination and rollback-free scheduling (paper §4.3).

   Liveness flows backwards from three roots: guard operands (constraint
   section), the deferred write set, and the return-data pieces.  Anything
   unreachable is dead.  Instructions needed by any guard are scheduled
   before the guards that use them, in original order; everything else moves
   after the last guard into the fast path, so a constraint violation aborts
   with nothing to roll back. *)

module I = Ir

type scheduled = {
  instrs : I.instr array;
  first_fast : int;
  dead_removed : int;
}

let schedule (instrs : I.instr list) (writes : I.write list) (output : I.piece list) =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  (* def index per register *)
  let max_reg =
    Array.fold_left
      (fun acc ins -> match I.instr_def ins with Some r -> max acc (r + 1) | None -> acc)
      0 arr
  in
  let def_of = Array.make max_reg (-1) in
  Array.iteri
    (fun i ins -> match I.instr_def ins with Some r -> def_of.(r) <- i | None -> ())
    arr;
  let constraint_live = Array.make n false in
  let fast_live = Array.make n false in
  (* mark [r]'s defining instruction and its dependencies into [live] *)
  let rec mark live r =
    if r < max_reg && def_of.(r) >= 0 && not (live.(def_of.(r))) then begin
      live.(def_of.(r)) <- true;
      List.iter (mark live) (I.instr_uses arr.(def_of.(r)))
    end
  in
  (* constraint roots: guards and their dependencies *)
  Array.iteri
    (fun i ins ->
      match ins with
      | I.Guard _ | I.Guard_size _ | I.Guard_warm _ ->
        constraint_live.(i) <- true;
        List.iter (mark constraint_live) (I.instr_uses ins)
      | I.Compute _ | I.Keccak _ | I.Sha256 _ | I.Pack _ | I.Read _ -> ())
    arr;
  (* fast-path roots: writes and output *)
  List.iter (fun w -> List.iter (mark fast_live) (I.write_uses w)) writes;
  List.iter (fun p -> List.iter (mark fast_live) (I.piece_regs p)) output;
  (* partition, preserving order *)
  let constraint_section = ref [] in
  let fast_section = ref [] in
  let dead = ref 0 in
  Array.iteri
    (fun i ins ->
      if constraint_live.(i) then constraint_section := ins :: !constraint_section
      else if fast_live.(i) then fast_section := ins :: !fast_section
      else
        match ins with
        | I.Guard _ | I.Guard_size _ | I.Guard_warm _ -> assert false
        | I.Compute _ | I.Keccak _ | I.Sha256 _ | I.Pack _ | I.Read _ -> incr dead)
    arr;
  let cs = List.rev !constraint_section and fs = List.rev !fast_section in
  {
    instrs = Array.of_list (cs @ fs);
    first_fast = List.length cs;
    dead_removed = !dead;
  }
