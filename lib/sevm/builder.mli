(** Trace-based program specialization (paper §4.3, Fig. 6).

    [build] replays a recorded EVM trace symbolically and produces a linear
    accelerated path: one constraint set plus one fast path, in the S-EVM
    register IR.  The single pass performs complex-instruction
    decomposition, stack→register SSA translation, register promotion
    (stack, memory, storage, environment), control-flow elimination,
    constant folding, common-subexpression elimination and constraint
    generation; a second pass does dead-code elimination and rollback-free
    scheduling (all effects after the last guard). *)

exception Unsupported of string

val build :
  ?spec:Spec.t ->
  ?prewarm:(State.Address.t * U256.t option) list ->
  ?template:bool ->
  Evm.Env.tx ->
  Evm.Env.block_env ->
  Evm.Trace.event array ->
  Evm.Processor.receipt ->
  State.Statedb.t ->
  (Ir.path, string) result
(** [build tx benv trace receipt pre_state] synthesizes the accelerated path
    for one pre-execution of [tx].

    - [benv] is the speculated block environment the trace ran in;
    - [receipt] is the traced execution's result (status, gas, output);
    - [pre_state] must expose the state {e as of just before} the traced
      execution (callers snapshot, execute with tracing, then revert).

    [?spec] (default [!Spec.current]) and [?prewarm] must be exactly what
    the traced execution ran under: the path is stamped with the spec's
    fork id, and under access-list specs a [Ir.Guard_warm] pins the entry
    warmth of each first-touched location (plus a zeroness guard per
    variable SSTORE value under refund specs), so replay in a colder or
    warmer context falls back via guard violation instead of inheriting
    the traced gas.

    [?template] (default [false]) builds a {e template} path for the
    shared AP store (lib/apstore, DESIGN.md §13): the caller-varying
    transaction fields — sender, value, nonce, gas price and the ABI
    calldata words past the 4-byte selector — are promoted from baked-in
    constants to input registers recorded in [Ir.path.inputs], which
    [Ap.Exec.bind_inputs] seeds from whatever transaction the template is
    later served to.  Storage keys and balance addresses derived from
    those inputs stay symbolic ([Ir.R_storage_dyn]/[Ir.W_storage_dyn],
    operand-addressed balance writes) with pairwise aliasing guards
    pinning their equality pattern.  Template builds reject creations,
    precompile targets, invalid receipts and non-empty [?prewarm] hints.

    Returns [Error reason] for the few transaction shapes specialization
    does not cover (contract creation, [SELFDESTRUCT]) — such transactions
    simply run without an AP, like the paper's missed predictions. *)

val count_trace_len : Evm.Trace.event array -> int
(** Number of executed EVM instructions recorded in a trace. *)
