(* Linear replay of one S-EVM path: constraint section first (all guards
   checked), then the fast path, then the deferred writes.  Kept
   independent of lib/ap on purpose — see the .mli. *)

open State
module I = Ir

type violation = { index : int; detail : string }

type outcome =
  | Replayed of Evm.Processor.receipt
  | Violated of violation

exception Guard_failed of violation

let value_of regs = function
  | I.Const v -> v
  | I.Reg r -> regs.(r)

(* Context reads, re-derived from the interpreter's semantics (interp.ml)
   rather than borrowed from Ap.Exec. *)
let eval_read st (benv : Evm.Env.block_env) regs src =
  match src with
  | I.R_timestamp -> U256.of_int64 benv.timestamp
  | I.R_number -> U256.of_int64 benv.number
  | I.R_coinbase -> Address.to_u256 benv.coinbase
  | I.R_difficulty -> benv.difficulty
  | I.R_gaslimit -> U256.of_int benv.gas_limit
  | I.R_blockhash op -> (
    let cur = benv.number in
    match U256.to_int_opt (value_of regs op) with
    | Some bn
      when Int64.of_int bn < cur
           && Int64.compare (Int64.of_int bn) (Int64.sub cur 256L) >= 0 ->
      benv.block_hash (Int64.of_int bn)
    | _ -> U256.zero)
  | I.R_balance op -> Statedb.get_balance st (Address.of_u256 (value_of regs op))
  | I.R_nonce addr -> U256.of_int (Statedb.get_nonce st addr)
  | I.R_nonce_of op ->
    U256.of_int (Statedb.get_nonce st (Address.of_u256 (value_of regs op)))
  | I.R_storage (addr, key) -> Statedb.get_storage st addr key
  | I.R_storage_dyn (addr, key) -> Statedb.get_storage st addr (value_of regs key)
  | I.R_extcodesize op ->
    U256.of_int (String.length (Statedb.get_code st (Address.of_u256 (value_of regs op))))
  | I.R_extcodehash op ->
    let addr = Address.of_u256 (value_of regs op) in
    if Statedb.is_empty_account st addr then U256.zero
    else U256.of_bytes_be (Statedb.get_code_hash st addr)

let step ~warm st benv regs i ins =
  match ins with
  | I.Compute (r, op, args) -> regs.(r) <- I.eval_compute op (Array.map (value_of regs) args)
  | I.Keccak (r, ps) -> regs.(r) <- Khash.Keccak.digest_u256 (I.bytes_of_pieces regs ps)
  | I.Sha256 (r, ps) -> regs.(r) <- U256.of_bytes_be (Khash.Sha256.digest (I.bytes_of_pieces regs ps))
  | I.Pack (r, ps) -> regs.(r) <- U256.of_bytes_be (I.bytes_of_pieces regs ps)
  | I.Read (r, src) -> regs.(r) <- eval_read st benv regs src
  | I.Guard (op, want) ->
    let got = value_of regs op in
    if not (U256.equal got want) then
      raise
        (Guard_failed
           { index = i; detail = Fmt.str "expected %a, got %a" U256.pp want U256.pp got })
  | I.Guard_size (op, n) ->
    let got = U256.byte_size (value_of regs op) in
    if got <> n then
      raise (Guard_failed { index = i; detail = Fmt.str "expected size %d, got %d" n got })
  | I.Guard_warm (key, want) ->
    let got = warm key in
    if got <> want then
      raise
        (Guard_failed { index = i; detail = Fmt.str "expected warm=%b, got %b" want got })

let apply_write st regs logs w =
  match w with
  | I.W_storage (addr, key, v) -> Statedb.set_storage st addr key (value_of regs v)
  | I.W_storage_dyn (addr, key, v) ->
    Statedb.set_storage st addr (value_of regs key) (value_of regs v)
  | I.W_balance_set (a, v) ->
    Statedb.set_balance st (Address.of_u256 (value_of regs a)) (value_of regs v)
  | I.W_balance_add (a, v) ->
    let addr = Address.of_u256 (value_of regs a) in
    Statedb.set_balance st addr (U256.add (Statedb.get_balance st addr) (value_of regs v))
  | I.W_balance_sub (a, v) ->
    let addr = Address.of_u256 (value_of regs a) in
    Statedb.set_balance st addr (U256.sub (Statedb.get_balance st addr) (value_of regs v))
  | I.W_nonce_set (addr, n) -> Statedb.set_nonce st addr n
  | I.W_nonce_dyn (a, n) ->
    Statedb.set_nonce st
      (Address.of_u256 (value_of regs a))
      (match U256.to_int_opt (value_of regs n) with Some v -> v | None -> 0)
  | I.W_code (addr, ps) -> Statedb.set_code st addr (I.bytes_of_pieces regs ps)
  | I.W_log (addr, topics, data) ->
    logs :=
      { Evm.Env.log_address = addr;
        topics = List.map (value_of regs) topics;
        log_data = I.bytes_of_pieces regs data }
      :: !logs

(* ---- static read/write-set lift (parallel block execution) ----

   The locations a path touches are almost entirely manifest in its
   instructions: storage reads/writes carry concrete (addr, key) pairs
   (keys are constants after guarding), nonce reads carry addresses, and
   balance/code reads address through operands.  A [Reg]-addressed operand
   is resolved through [reg_values] — the value the register took during
   tracing — which is only a prediction of the replay-time address, so such
   a path is flagged inexact and callers must fall back to dynamic
   (journal/touch-based) capture. *)

type rw = {
  rw_reads : Statedb.touch list;
  rw_writes : Statedb.touch list;
  rw_exact : bool;  (** no [Reg]-addressed location: the sets are complete *)
}

let rw_sets (p : I.path) : rw =
  let exact = ref true in
  let addr_of = function
    | I.Const v -> Address.of_u256 v
    | I.Reg r ->
      exact := false;
      Address.of_u256 p.reg_values.(r)
  in
  let key_of = function
    | I.Const v -> v
    | I.Reg r ->
      exact := false;
      p.reg_values.(r)
  in
  let touch_equal a b =
    match (a, b) with
    | Statedb.T_account x, Statedb.T_account y | Statedb.T_code x, Statedb.T_code y ->
      Address.equal x y
    | Statedb.T_slot (x, k), Statedb.T_slot (y, l) -> Address.equal x y && U256.equal k l
    | _ -> false
  in
  let dedup l = List.fold_left (fun acc t -> if List.exists (touch_equal t) acc then acc else t :: acc) [] l in
  let reads =
    Array.to_list p.instrs
    |> List.concat_map (fun ins ->
           match ins with
           | I.Read (_, src) -> (
             match src with
             | I.R_balance op | I.R_nonce_of op -> [ Statedb.T_account (addr_of op) ]
             | I.R_nonce addr -> [ Statedb.T_account addr ]
             | I.R_storage (addr, key) -> [ Statedb.T_slot (addr, key) ]
             | I.R_storage_dyn (addr, key) -> [ Statedb.T_slot (addr, key_of key) ]
             | I.R_extcodesize op | I.R_extcodehash op ->
               let a = addr_of op in
               [ Statedb.T_account a; Statedb.T_code a ]
             | I.R_timestamp | I.R_number | I.R_coinbase | I.R_difficulty
             | I.R_gaslimit | I.R_blockhash _ ->
               [])
           | I.Compute _ | I.Keccak _ | I.Sha256 _ | I.Pack _ | I.Guard _
           | I.Guard_size _ | I.Guard_warm _ ->
             [])
  in
  let writes =
    List.concat_map
      (fun w ->
        match w with
        | I.W_storage (addr, key, _) -> [ Statedb.T_slot (addr, key) ]
        | I.W_storage_dyn (addr, key, _) -> [ Statedb.T_slot (addr, key_of key) ]
        | I.W_balance_set (a, _) | I.W_balance_add (a, _) | I.W_balance_sub (a, _) ->
          [ Statedb.T_account (addr_of a) ]
        | I.W_nonce_set (addr, _) -> [ Statedb.T_account addr ]
        | I.W_nonce_dyn (a, _) -> [ Statedb.T_account (addr_of a) ]
        | I.W_code (addr, _) -> [ Statedb.T_account addr; Statedb.T_code addr ]
        | I.W_log _ -> [])
      p.writes
  in
  { rw_reads = dedup reads; rw_writes = dedup writes; rw_exact = !exact }

let run ?spec ?(prewarm = []) (p : I.path) st benv (tx : Evm.Env.tx) : outcome =
  let spec = match spec with Some s -> s | None -> !Spec.current in
  if p.fork <> spec.Spec.id then
    Violated
      {
        index = -1;
        detail =
          Fmt.str "fork mismatch: path built under spec %d, replaying under %d" p.fork
            spec.Spec.id;
      }
  else
  let warm = Evm.Processor.entry_warm tx prewarm in
  let regs = Array.make (max p.reg_count 1) U256.zero in
  Array.iteri (fun i src -> regs.(i) <- I.input_value ~spec tx src) p.inputs;
  match Array.iteri (step ~warm st benv regs) p.instrs with
  | exception Guard_failed v -> Violated v
  | () ->
    let sender_balance_before = Statedb.get_balance st tx.Evm.Env.sender in
    let sender_nonce_before = Statedb.get_nonce st tx.Evm.Env.sender in
    let logs = ref [] in
    List.iter (apply_write st regs logs) p.writes;
    let gas_used =
      match p.gas_used_src with
      | None -> p.gas_used
      | Some op -> (
        match U256.to_int_opt (match op with I.Const v -> v | I.Reg r -> regs.(r)) with
        | Some g -> g
        | None -> p.gas_used)
    in
    Replayed
      {
        Evm.Processor.status = p.status;
        gas_used;
        gas_refund = p.gas_refund;
        output = I.bytes_of_pieces regs p.output;
        logs = List.rev !logs;
        contract_address = None;
        sender_balance_before;
        sender_nonce_before;
      }
