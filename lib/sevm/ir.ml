(* S-EVM: Forerunner's register-based intermediate representation
   (paper §4.3).  A traced transaction execution becomes a straight-line
   sequence of S-EVM instructions in SSA form: every instruction either
   reads a context variable, computes, or (in the deferred write set)
   writes.  Stack and memory traffic from EVM is gone — register promotion
   resolved it at specialization time. *)

open State

type reg = int

type operand = Reg of reg | Const of U256.t

(* A contiguous run of bytes used to rebuild memory contents, call data,
   return data, hash inputs and log payloads. *)
type piece =
  | P_const of string
  | P_reg of reg * int * int
      (** [P_reg (r, off, len)]: bytes [off, off+len) of the 32-byte
          big-endian encoding of register [r]. *)

type compute_op =
  | C_add | C_mul | C_sub | C_div | C_sdiv | C_mod | C_smod | C_addmod | C_mulmod
  | C_exp | C_signextend
  | C_lt | C_gt | C_slt | C_sgt | C_eq | C_iszero
  | C_and | C_or | C_xor | C_not | C_byte | C_shl | C_shr | C_sar

type read_src =
  | R_timestamp
  | R_number
  | R_coinbase
  | R_difficulty
  | R_gaslimit
  | R_blockhash of operand
  | R_balance of operand  (** address (low 160 bits of the operand) *)
  | R_nonce of Address.t
  | R_nonce_of of operand
      (** nonce of a register-held address (template paths: the sender is
          an input register, not a baked constant) *)
  | R_storage of Address.t * U256.t  (** keys are constants after guarding *)
  | R_storage_dyn of Address.t * operand
      (** storage read with a register-held key.  The contract address
          stays concrete (it is part of the template key); the slot varies
          per caller (e.g. keccak(sender . slot)), so the key rides in a
          register.  Only template paths emit this. *)
  | R_extcodesize of operand
  | R_extcodehash of operand

type instr =
  | Compute of reg * compute_op * operand array
  | Keccak of reg * piece list
  | Sha256 of reg * piece list  (** the 0x02 precompile, decomposed *)
  | Pack of reg * piece list  (** assemble a 32-byte word from pieces *)
  | Read of reg * read_src
  | Guard of operand * U256.t  (** constraint: operand must equal the value *)
  | Guard_size of operand * int  (** constraint: byte_size(operand) = n *)
  | Guard_warm of (Address.t * U256.t option) * bool
      (** constraint: the access-list warmth of a location on transaction
          entry — [(a, None)] the account, [(a, Some k)] one storage slot —
          must equal the recorded bool.  Keys are concrete (guarded before
          emission), so the guard has no register operands; it constrains
          replay-time entry state instead of a register value, which is why
          warmth gets its own guard class rather than riding on {!Guard}
          (DESIGN.md §12). *)

type write =
  | W_storage of Address.t * U256.t * operand
  | W_storage_dyn of Address.t * operand * operand
      (** register-held key (template paths), value *)
  | W_balance_set of operand * operand  (** address operand, absolute value *)
  | W_balance_add of operand * operand
  | W_balance_sub of operand * operand
  | W_nonce_set of Address.t * int
  | W_nonce_dyn of operand * operand
      (** register-held address, register-held new nonce (template paths:
          the sender bump becomes nonce_input + 1) *)
  | W_code of Address.t * piece list  (** contract deployment *)
  | W_log of Address.t * operand list * piece list

(* ---- template input registers (lib/apstore) ----

   A template path promotes caller-varying transaction fields from baked-in
   constants to {e input registers}: registers 0..k-1 of the path are
   pre-seeded from the transaction being served, before any instruction
   runs.  [input_src] says where each one comes from.  Gas limit and the
   calldata intrinsic class are lifted too ([In_gas_limit],
   [In_intrinsic_gas], [In_gas_used]): the traced execution envelope is
   guarded in the preamble and the served receipt's [gas_used] is
   recomputed from the class-invariant execution gas, so the template key
   no longer has to pin the exact gas limit or calldata byte mix — except
   for code that executes GAS, which lib/apstore detects statically
   (lib/bca) and keeps fully pinned. *)

type input_src =
  | In_sender  (** [tx.sender] as a u256 word *)
  | In_value  (** [tx.value] *)
  | In_nonce  (** [tx.nonce] *)
  | In_gas_price  (** [tx.gas_price] *)
  | In_gas_limit  (** [tx.gas_limit] *)
  | In_intrinsic_gas
      (** [Spec.intrinsic_gas] of the served transaction's calldata — a
          message-call charge, so templates (never creations) only *)
  | In_gas_used of { g_exec : int; g_refund : int }
      (** the served receipt's [gas_used], recomputed from the traced
          path's calldata-class-invariant quantities: [g_exec] is the
          post-intrinsic execution charge, [g_refund] the raw (uncapped)
          refund counter.  Value = pre - min(g_refund, pre / divisor)
          where pre = intrinsic' + g_exec under the serving spec *)
  | In_calldata_word of int
      (** the 32-byte big-endian word of [tx.data] at byte offset [4+32k]
          (ABI argument [k]), zero-padded past the end *)

let input_value ~(spec : Spec.t) (tx : Evm.Env.tx) = function
  | In_sender -> Address.to_u256 tx.sender
  | In_value -> tx.value
  | In_nonce -> U256.of_int tx.nonce
  | In_gas_price -> tx.gas_price
  | In_gas_limit -> U256.of_int tx.gas_limit
  | In_intrinsic_gas ->
    U256.of_int (Spec.intrinsic_gas spec ~is_create:false tx.data)
  | In_gas_used { g_exec; g_refund } ->
    let pre = Spec.intrinsic_gas spec ~is_create:false tx.data + g_exec in
    U256.of_int (pre - min g_refund (pre / spec.Spec.refund_cap_divisor))
  | In_calldata_word k ->
    let off = 4 + (32 * k) in
    let len = String.length tx.data in
    let buf = Bytes.make 32 '\x00' in
    for i = 0 to 31 do
      if off + i < len then Bytes.set buf i tx.data.[off + i]
    done;
    U256.of_bytes_be (Bytes.to_string buf)

let pp_input ppf = function
  | In_sender -> Fmt.string ppf "sender"
  | In_value -> Fmt.string ppf "value"
  | In_nonce -> Fmt.string ppf "nonce"
  | In_gas_price -> Fmt.string ppf "gas_price"
  | In_gas_limit -> Fmt.string ppf "gas_limit"
  | In_intrinsic_gas -> Fmt.string ppf "intrinsic_gas"
  | In_gas_used { g_exec; g_refund } ->
    Fmt.pf ppf "gas_used[exec=%d,refund=%d]" g_exec g_refund
  | In_calldata_word k -> Fmt.pf ppf "calldata[%d]" k

(* Per-path synthesis statistics, feeding Fig. 15 / §5.5. *)
type stats = {
  evm_trace_len : int;  (** instructions in the recorded EVM trace *)
  decomposed_added : int;  (** extra S-EVM instrs from decomposition *)
  stack_eliminated : int;  (** PUSH/DUP/SWAP/POP *)
  mem_eliminated : int;  (** MLOAD/MSTORE/MSTORE8/copies promoted away *)
  control_eliminated : int;  (** JUMP/JUMPI/JUMPDEST/PC *)
  state_eliminated : int;  (** promoted repeat SLOAD/env reads *)
  const_folded : int;
  cse_removed : int;
  dead_removed : int;
  guards_added : int;
  constraint_len : int;  (** instrs in the constraint (pre-fast-path) section *)
  fastpath_len : int;
}

let empty_stats =
  {
    evm_trace_len = 0;
    decomposed_added = 0;
    stack_eliminated = 0;
    mem_eliminated = 0;
    control_eliminated = 0;
    state_eliminated = 0;
    const_folded = 0;
    cse_removed = 0;
    dead_removed = 0;
    guards_added = 0;
    constraint_len = 0;
    fastpath_len = 0;
  }

(* A linear accelerated path: one constraint set plus one fast path,
   synthesized from one pre-execution (before AP merging). *)
type path = {
  instrs : instr array;  (** constraint section then fast-path section *)
  first_fast : int;  (** index of the first fast-path instruction *)
  writes : write list;
  status : Evm.Processor.status;
  gas_used : int;  (** the traced receipt's charge; exact for replays of
                       the same transaction *)
  gas_used_src : operand option;
      (** template paths: the [In_gas_used] register whose serve-time
          binding is the served receipt's [gas_used] (the baked constant
          above is only the traced value).  [None] for ordinary paths. *)
  gas_refund : int;  (** raw (uncapped) refund counter of the traced run,
                         surfaced into the receipt *)
  output : piece list;
  reg_count : int;
  reg_values : U256.t array;  (** value each register took during tracing *)
  fork : int;  (** spec id the path was built under; replay under any other
                   fork is a guard violation before the first instruction *)
  inputs : input_src array;
      (** template input registers: register [i] is pre-seeded with
          [input_value tx inputs.(i)] before the path runs.  Empty for
          ordinary per-transaction paths. *)
  stats : stats;
}

(* ---- evaluation (shared by constant folding and AP execution) ---- *)

let bool_word b = if b then U256.one else U256.zero

let eval_compute op (args : U256.t array) =
  let a i = args.(i) in
  match op with
  | C_add -> U256.add (a 0) (a 1)
  | C_mul -> U256.mul (a 0) (a 1)
  | C_sub -> U256.sub (a 0) (a 1)
  | C_div -> U256.div (a 0) (a 1)
  | C_sdiv -> U256.sdiv (a 0) (a 1)
  | C_mod -> U256.rem (a 0) (a 1)
  | C_smod -> U256.srem (a 0) (a 1)
  | C_addmod -> U256.addmod (a 0) (a 1) (a 2)
  | C_mulmod -> U256.mulmod (a 0) (a 1) (a 2)
  | C_exp -> U256.exp (a 0) (a 1)
  | C_signextend -> U256.signextend (a 0) (a 1)
  | C_lt -> bool_word (U256.lt (a 0) (a 1))
  | C_gt -> bool_word (U256.gt (a 0) (a 1))
  | C_slt -> bool_word (U256.slt (a 0) (a 1))
  | C_sgt -> bool_word (U256.sgt (a 0) (a 1))
  | C_eq -> bool_word (U256.equal (a 0) (a 1))
  | C_iszero -> bool_word (U256.is_zero (a 0))
  | C_and -> U256.logand (a 0) (a 1)
  | C_or -> U256.logor (a 0) (a 1)
  | C_xor -> U256.logxor (a 0) (a 1)
  | C_not -> U256.lognot (a 0)
  | C_byte -> U256.byte (a 0) (a 1)
  | C_shl -> (
    match U256.to_int_opt (a 0) with
    | Some k when k < 256 -> U256.shift_left (a 1) k
    | _ -> U256.zero)
  | C_shr -> (
    match U256.to_int_opt (a 0) with
    | Some k when k < 256 -> U256.shift_right (a 1) k
    | _ -> U256.zero)
  | C_sar -> (
    match U256.to_int_opt (a 0) with
    | Some k when k < 256 -> U256.shift_right_arith (a 1) k
    | _ -> if U256.testbit (a 1) 255 then U256.max_value else U256.zero)

let compute_op_of_evm : Evm.Op.t -> compute_op option = function
  | ADD -> Some C_add | MUL -> Some C_mul | SUB -> Some C_sub | DIV -> Some C_div
  | SDIV -> Some C_sdiv | MOD -> Some C_mod | SMOD -> Some C_smod
  | ADDMOD -> Some C_addmod | MULMOD -> Some C_mulmod | EXP -> Some C_exp
  | SIGNEXTEND -> Some C_signextend | LT -> Some C_lt | GT -> Some C_gt
  | SLT -> Some C_slt | SGT -> Some C_sgt | EQ -> Some C_eq | ISZERO -> Some C_iszero
  | AND -> Some C_and | OR -> Some C_or | XOR -> Some C_xor | NOT -> Some C_not
  | BYTE -> Some C_byte | SHL -> Some C_shl | SHR -> Some C_shr | SAR -> Some C_sar
  | _ -> None

(* EVM stack order note: for SHL/SHR/SAR the EVM pops shift then value, and
   eval_compute above follows that same order (args.(0) = shift). *)

let compute_name = function
  | C_add -> "ADD" | C_mul -> "MUL" | C_sub -> "SUB" | C_div -> "DIV" | C_sdiv -> "SDIV"
  | C_mod -> "MOD" | C_smod -> "SMOD" | C_addmod -> "ADDMOD" | C_mulmod -> "MULMOD"
  | C_exp -> "EXP" | C_signextend -> "SIGNEXTEND" | C_lt -> "LT" | C_gt -> "GT"
  | C_slt -> "SLT" | C_sgt -> "SGT" | C_eq -> "EQ" | C_iszero -> "ISZERO"
  | C_and -> "AND" | C_or -> "OR" | C_xor -> "XOR" | C_not -> "NOT" | C_byte -> "BYTE"
  | C_shl -> "SHL" | C_shr -> "SHR" | C_sar -> "SAR"

(* ---- pretty-printing ---- *)

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "v%d" r
  | Const v -> U256.pp ppf v

let pp_piece ppf = function
  | P_const s -> Fmt.pf ppf "%dB const" (String.length s)
  | P_reg (r, off, len) -> Fmt.pf ppf "v%d[%d..%d]" r off (off + len)

let pp_read ppf = function
  | R_timestamp -> Fmt.string ppf "TIMESTAMP"
  | R_number -> Fmt.string ppf "NUMBER"
  | R_coinbase -> Fmt.string ppf "COINBASE"
  | R_difficulty -> Fmt.string ppf "DIFFICULTY"
  | R_gaslimit -> Fmt.string ppf "GASLIMIT"
  | R_blockhash o -> Fmt.pf ppf "BLOCKHASH(%a)" pp_operand o
  | R_balance o -> Fmt.pf ppf "BALANCE(%a)" pp_operand o
  | R_nonce a -> Fmt.pf ppf "NONCE(%a)" Address.pp a
  | R_nonce_of o -> Fmt.pf ppf "NONCE(%a)" pp_operand o
  | R_storage (a, k) -> Fmt.pf ppf "SLOAD(%a,%a)" Address.pp a U256.pp k
  | R_storage_dyn (a, k) -> Fmt.pf ppf "SLOAD(%a,%a)" Address.pp a pp_operand k
  | R_extcodesize o -> Fmt.pf ppf "EXTCODESIZE(%a)" pp_operand o
  | R_extcodehash o -> Fmt.pf ppf "EXTCODEHASH(%a)" pp_operand o

let pp_instr ppf = function
  | Compute (r, op, args) ->
    Fmt.pf ppf "v%d = %s(%a)" r (compute_name op) (Fmt.array ~sep:Fmt.comma pp_operand) args
  | Keccak (r, ps) -> Fmt.pf ppf "v%d = KECCAK(%a)" r (Fmt.list ~sep:Fmt.comma pp_piece) ps
  | Sha256 (r, ps) -> Fmt.pf ppf "v%d = SHA256(%a)" r (Fmt.list ~sep:Fmt.comma pp_piece) ps
  | Pack (r, ps) -> Fmt.pf ppf "v%d = PACK(%a)" r (Fmt.list ~sep:Fmt.comma pp_piece) ps
  | Read (r, src) -> Fmt.pf ppf "v%d = %a" r pp_read src
  | Guard (o, v) -> Fmt.pf ppf "GUARD(%a == %a)" pp_operand o U256.pp v
  | Guard_size (o, n) -> Fmt.pf ppf "GUARD(bytesize(%a) == %d)" pp_operand o n
  | Guard_warm ((a, ko), w) -> (
    match ko with
    | None -> Fmt.pf ppf "GUARD(warm(%a) == %b)" Address.pp a w
    | Some k -> Fmt.pf ppf "GUARD(warm(%a,%a) == %b)" Address.pp a U256.pp k w)

let pp_write ppf = function
  | W_storage (a, k, v) -> Fmt.pf ppf "SSTORE(%a, %a, %a)" Address.pp a U256.pp k pp_operand v
  | W_storage_dyn (a, k, v) ->
    Fmt.pf ppf "SSTORE(%a, %a, %a)" Address.pp a pp_operand k pp_operand v
  | W_balance_set (a, v) -> Fmt.pf ppf "BAL[%a] := %a" pp_operand a pp_operand v
  | W_balance_add (a, v) -> Fmt.pf ppf "BAL[%a] += %a" pp_operand a pp_operand v
  | W_balance_sub (a, v) -> Fmt.pf ppf "BAL[%a] -= %a" pp_operand a pp_operand v
  | W_nonce_set (a, n) -> Fmt.pf ppf "NONCE[%a] := %d" Address.pp a n
  | W_nonce_dyn (a, n) -> Fmt.pf ppf "NONCE[%a] := %a" pp_operand a pp_operand n
  | W_code (a, ps) -> Fmt.pf ppf "CODE[%a] := %d pieces" Address.pp a (List.length ps)
  | W_log (a, topics, _) ->
    Fmt.pf ppf "LOG(%a, %a)" Address.pp a (Fmt.list ~sep:Fmt.comma pp_operand) topics

let pp_path ppf p =
  Fmt.pf ppf "path: %d instrs (%d constraint + %d fast), %d writes, gas=%d@."
    (Array.length p.instrs) p.first_fast
    (Array.length p.instrs - p.first_fast)
    (List.length p.writes) p.gas_used;
  Array.iteri
    (fun i ins ->
      if i = p.first_fast then Fmt.pf ppf "--- fast path ---@.";
      Fmt.pf ppf "  %a@." pp_instr ins)
    p.instrs;
  List.iter (fun w -> Fmt.pf ppf "  %a@." pp_write w) p.writes

(* ---- operand helpers ---- *)

let operand_regs = function Reg r -> [ r ] | Const _ -> []
let piece_regs = function P_reg (r, _, _) -> [ r ] | P_const _ -> []

let instr_uses = function
  | Compute (_, _, args) -> Array.to_list args |> List.concat_map operand_regs
  | Keccak (_, ps) | Sha256 (_, ps) | Pack (_, ps) -> List.concat_map piece_regs ps
  | Read (_, src) -> (
    match src with
    | R_blockhash o | R_balance o | R_nonce_of o | R_storage_dyn (_, o) | R_extcodesize o
    | R_extcodehash o ->
      operand_regs o
    | R_timestamp | R_number | R_coinbase | R_difficulty | R_gaslimit | R_nonce _
    | R_storage _ -> [])
  | Guard (o, _) | Guard_size (o, _) -> operand_regs o
  | Guard_warm _ -> []

let instr_def = function
  | Compute (r, _, _) | Keccak (r, _) | Sha256 (r, _) | Pack (r, _) | Read (r, _) -> Some r
  | Guard _ | Guard_size _ | Guard_warm _ -> None

let write_uses = function
  | W_storage (_, _, v) -> operand_regs v
  | W_storage_dyn (_, k, v) -> operand_regs k @ operand_regs v
  | W_balance_set (a, v) | W_balance_add (a, v) | W_balance_sub (a, v) ->
    operand_regs a @ operand_regs v
  | W_nonce_set _ -> []
  | W_nonce_dyn (a, n) -> operand_regs a @ operand_regs n
  | W_code (_, ps) -> List.concat_map piece_regs ps
  | W_log (_, topics, ps) -> List.concat_map operand_regs topics @ List.concat_map piece_regs ps

(* Materialize pieces into bytes given a register file. *)
let bytes_of_pieces regs pieces =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      match p with
      | P_const s -> Buffer.add_string buf s
      | P_reg (r, off, len) -> Buffer.add_substring buf (U256.to_bytes_be regs.(r)) off len)
    pieces;
  Buffer.contents buf

let pieces_len pieces =
  List.fold_left
    (fun acc p -> acc + match p with P_const s -> String.length s | P_reg (_, _, l) -> l)
    0 pieces
