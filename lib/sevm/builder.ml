(* Trace-based program specialization (paper Fig. 6).

   The builder replays a recorded EVM trace symbolically, performing in one
   pass: complex-instruction decomposition, stack-to-register SSA
   translation, register promotion (stack, memory, storage, environment),
   control-flow elimination, constant folding and CSE, and constraint
   generation (control guards at branch points, data guards on variable
   offsets/sizes/keys).  The output is a linear {!Ir.path}: a constraint
   section, a fast path, and a deferred write set — rollback-free by
   construction because all writes commit after the last guard.

   Traces containing CREATE or SELFDESTRUCT are rejected ([Unsupported]);
   such transactions run without an AP (still helped by prefetching),
   mirroring the paper's missed-prediction bucket. *)

open State
module I = Ir

exception Unsupported of string

(* ---- symbolic world state (immutable, for snapshot/rollback) ---- *)

module SKey = Map.Make (struct
  type t = string * string (* address bytes, 32-byte storage key *)

  let compare = compare
end)

module AKey = Map.Make (String)

type world = {
  storage : I.operand SKey.t;
  storage_dirty : SKey.key list; (* newest first, may contain dups *)
  balances : I.operand AKey.t; (* symbolic balance of addresses read *)
  balance_dirty : unit AKey.t;
  deltas : (bool * I.operand) list AKey.t; (* (is_add, amount), unread addrs *)
  balance_traced : U256.t AKey.t; (* concrete balance during the pre-execution *)
  logs : (Address.t * I.operand list * I.piece list) list; (* newest first *)
}

let empty_world =
  {
    storage = SKey.empty;
    storage_dirty = [];
    balances = AKey.empty;
    balance_dirty = AKey.empty;
    deltas = AKey.empty;
    balance_traced = AKey.empty;
    logs = [];
  }

(* ---- symbolic frames ---- *)

type byte_src = B_const of char | B_reg of I.reg * int

type frame = {
  ctx : Address.t;
  mutable stack : I.operand list;
  mem : (int, byte_src) Hashtbl.t;
  calldata : byte_src array;
  callvalue : I.operand;
  caller_word : I.operand;
  code : string;
  mutable retdata : byte_src array;
  mutable result : byte_src array;
  mutable ended : [ `Return | `Revert ] option;
  out_region : (int * int) option; (* where the parent wants the output *)
  snapshot : world; (* world before this frame's transfer *)
  transfer_in : (Address.t * Address.t * I.operand * U256.t) option;
      (* from, to, amount operand, traced amount — applied after snapshot *)
}

(* ---- builder context ---- *)

type cse_key =
  | K_compute of I.compute_op * I.operand array
  | K_keccak of I.piece list
  | K_pack of I.piece list
  | K_read of I.read_src

(* Template-lifting state (lib/apstore, DESIGN.md §13).  In template mode
   the caller-varying transaction fields — sender, value, nonce, gas price
   and the ABI calldata words past the selector — live in input registers
   seeded at execution time instead of being baked in as constants, so one
   specialization serves every structurally-equivalent transaction.  The
   tables below track what that lifting must additionally pin:

   - [t_skeys]: per-contract storage-key operands already seen, for the
     pairwise aliasing guards that keep the builder's traced-key slot map a
     faithful model under any serve-time binding;
   - [t_skey_first]: the operand that first named each traced slot, so the
     deferred write set can address it dynamically ([W_storage_dyn]);
   - [t_addr_reads]/[t_addr_ops]: same two roles for balance addresses. *)
type tmpl = {
  t_sender : I.reg;
  t_value : I.reg;
  t_nonce : I.reg;
  t_gasprice : I.reg;
  t_gaslimit : I.reg;
  t_intrinsic : I.reg; (* intrinsic gas of the served calldata *)
  t_gas_used : I.reg; (* served receipt's recomputed gas_used *)
  t_words : I.reg array; (* calldata word k = bytes [4+32k, 4+32k+32) *)
  t_inputs : I.input_src array;
  t_skeys : (string, (I.operand * U256.t) list ref) Hashtbl.t;
  t_skey_first : (string * string, I.operand) Hashtbl.t;
  mutable t_addr_reads : (I.operand * U256.t) list;
  t_addr_ops : (string, I.operand) Hashtbl.t;
}

type t = {
  tx : Evm.Env.tx;
  pre : Statedb.t; (* state as of just before the traced execution *)
  spec : Spec.t; (* fork the trace ran under; stamped into the path *)
  prewarm : (Address.t * U256.t option) list; (* entry access-list hint *)
  warm_touched : (Address.t * U256.t option, unit) Hashtbl.t;
      (* locations whose entry warmth is already pinned (first touch only) *)
  mutable world : world;
  mutable instrs : I.instr list; (* reversed *)
  mutable n_emitted : int;
  mutable next_reg : int;
  mutable reg_vals : U256.t array;
  cse : (cse_key, I.operand) Hashtbl.t;
  guards_seen : (I.operand * U256.t, unit) Hashtbl.t;
  mutable tmpl : tmpl option; (* Some = template-lifting mode *)
  mutable frames : frame list; (* head = innermost *)
  (* stats *)
  mutable st_stack : int;
  mutable st_mem : int;
  mutable st_control : int;
  mutable st_state : int;
  mutable st_folded : int;
  mutable st_cse : int;
  mutable st_guards : int;
  mutable st_decomposed : int;
  mutable trace_len : int;
}

let create spec prewarm tx pre =
  {
    tx;
    pre;
    spec;
    prewarm;
    warm_touched = Hashtbl.create 16;
    world = empty_world;
    instrs = [];
    n_emitted = 0;
    next_reg = 0;
    reg_vals = Array.make 64 U256.zero;
    cse = Hashtbl.create 64;
    guards_seen = Hashtbl.create 16;
    tmpl = None;
    frames = [];
    st_stack = 0;
    st_mem = 0;
    st_control = 0;
    st_state = 0;
    st_folded = 0;
    st_cse = 0;
    st_guards = 0;
    st_decomposed = 0;
    trace_len = 0;
  }

let val_of b = function I.Const v -> v | I.Reg r -> b.reg_vals.(r)

let fresh b v =
  let r = b.next_reg in
  b.next_reg <- r + 1;
  if r >= Array.length b.reg_vals then begin
    let a = Array.make (2 * Array.length b.reg_vals) U256.zero in
    Array.blit b.reg_vals 0 a 0 (Array.length b.reg_vals);
    b.reg_vals <- a
  end;
  b.reg_vals.(r) <- v;
  r

let emit b ins =
  b.instrs <- ins :: b.instrs;
  b.n_emitted <- b.n_emitted + 1

(* Allocate the template's input registers — they occupy v0..v(k-1), are
   defined by no instruction, and are seeded by [Ap.Exec.bind_inputs] from
   the transaction being served.  Build-time register values hold the
   speculated transaction's own fields, so symbolic/traced divergence
   checks work unchanged.

   Shapes a template cannot serve soundly are rejected up front: creations
   (the created address depends on the sender), precompile targets (their
   output is folded from concrete calldata), invalid receipts (the
   preamble guards assume a valid sender context), non-empty prewarm
   hints (warmth guards must pin the cold entry state every served
   transaction shares), traces that consumed their whole gas envelope
   (their gas_used is limit-dependent, not path-determined) and traces
   whose refund hit the cap (the raw counter cannot be recovered, so the
   served refund cannot be recomputed).

   Gas accounting is lifted, not pinned: the served limit and intrinsic
   charge live in input registers, the preamble guards the traced
   execution envelope (served limit - intrinsic >= traced limit -
   intrinsic, the monotone-gas condition under which the traced path
   replays exactly), and the receipt's gas_used is recomputed per serve
   via [In_gas_used].  GAS opcodes still bake the traced word as an
   unguarded constant — sound only when lib/apstore's key keeps such
   code fully pinned (lib/bca's uses-gas fact). *)
let init_template b (receipt : Evm.Processor.receipt) =
  let tx = b.tx in
  (match receipt.status with
  | Evm.Processor.Invalid _ -> raise (Unsupported "template: invalid transaction")
  | Evm.Processor.Success | Evm.Processor.Reverted -> ());
  (match tx.to_ with
  | None -> raise (Unsupported "template: contract creation")
  | Some target ->
    if Evm.Interp.precompile_of target <> None then
      raise (Unsupported "template: precompile target"));
  if b.prewarm <> [] then raise (Unsupported "template: prewarm hint");
  let inputs = ref [] in
  let mk src v =
    inputs := src :: !inputs;
    fresh b v
  in
  let t_sender = mk I.In_sender (Address.to_u256 tx.sender) in
  let t_value = mk I.In_value tx.value in
  let t_nonce = mk I.In_nonce (U256.of_int tx.nonce) in
  let t_gasprice = mk I.In_gas_price tx.gas_price in
  let intrinsic = Spec.intrinsic_gas b.spec ~is_create:false tx.data in
  let g_refund = receipt.gas_refund in
  let pre_refund = receipt.gas_used + g_refund in
  if g_refund > pre_refund / b.spec.Spec.refund_cap_divisor then
    raise (Unsupported "template: refund-capped trace");
  if pre_refund >= tx.gas_limit then
    raise (Unsupported "template: all gas consumed");
  let t_gaslimit = mk I.In_gas_limit (U256.of_int tx.gas_limit) in
  let t_intrinsic = mk I.In_intrinsic_gas (U256.of_int intrinsic) in
  let t_gas_used =
    mk
      (I.In_gas_used { g_exec = pre_refund - intrinsic; g_refund })
      (U256.of_int receipt.gas_used)
  in
  let len = String.length tx.data in
  let n_words = if len > 4 then (len - 4 + 31) / 32 else 0 in
  let t_words = Array.make n_words 0 in
  for k = 0 to n_words - 1 do
    t_words.(k) <-
      mk (I.In_calldata_word k) (I.input_value ~spec:b.spec tx (I.In_calldata_word k))
  done;
  b.tmpl <-
    Some
      {
        t_sender;
        t_value;
        t_nonce;
        t_gasprice;
        t_gaslimit;
        t_intrinsic;
        t_gas_used;
        t_words;
        t_inputs = Array.of_list (List.rev !inputs);
        t_skeys = Hashtbl.create 8;
        t_skey_first = Hashtbl.create 8;
        t_addr_reads = [];
        t_addr_ops = Hashtbl.create 4;
      }

(* Emit (or fold / reuse) a compute instruction; [traced] is the concrete
   result observed during the pre-execution. *)
let compute b op args traced =
  if Array.for_all (function I.Const _ -> true | I.Reg _ -> false) args then begin
    let folded = I.eval_compute op (Array.map (val_of b) args) in
    if not (U256.equal folded traced) then
      raise (Unsupported "constant-fold mismatch (builder bug)");
    b.st_folded <- b.st_folded + 1;
    I.Const traced
  end
  else begin
    let key = K_compute (op, args) in
    match Hashtbl.find_opt b.cse key with
    | Some op' ->
      b.st_cse <- b.st_cse + 1;
      op'
    | None ->
      let r = fresh b traced in
      emit b (I.Compute (r, op, args));
      Hashtbl.replace b.cse key (I.Reg r);
      I.Reg r
  end

(* Equality guard: no-op when the operand is already a constant. *)
let guard b op expected =
  match op with
  | I.Const v ->
    if not (U256.equal v expected) then raise (Unsupported "constant guard mismatch")
  | I.Reg _ ->
    if not (Hashtbl.mem b.guards_seen (op, expected)) then begin
      Hashtbl.replace b.guards_seen (op, expected) ();
      emit b (I.Guard (op, expected));
      b.st_guards <- b.st_guards + 1
    end

(* Truth guard for JUMPI conditions: accepts any non-zero value when the
   traced condition was non-zero (paper: guards check the branch decision,
   not the full word). *)
let guard_truth b op traced =
  match op with
  | I.Const v ->
    if U256.is_zero v <> U256.is_zero traced then
      raise (Unsupported "constant truth-guard mismatch")
  | I.Reg _ ->
    (* Always materialize ISZERO so traces taking either direction emit the
       same instruction stream up to the guard — the merged AP then branches
       on this one register (paper's dual-purpose guard nodes). *)
    let z = compute b I.C_iszero [| op |] (I.bool_word (U256.is_zero traced)) in
    guard b z (I.bool_word (U256.is_zero traced))

let guard_size b op traced =
  match op with
  | I.Const _ -> ()
  | I.Reg _ ->
    emit b (I.Guard_size (op, U256.byte_size traced));
    b.st_guards <- b.st_guards + 1

(* ---- entry-warmth constraints (access-list specs, DESIGN.md §12) ----

   The traced gas embeds one cold surcharge per location first touched
   cold, so the path is only valid in contexts with the same entry access
   list.  At an opcode's *first* touch of a location its warmth equals its
   entry warmth (later touches are warm in trace and replay alike), so one
   [Guard_warm] per location, emitted at first touch with the expected
   value from [Evm.Processor.entry_warm], pins exactly the state the gas
   depends on.  Replaying under a colder access list (e.g. built with a
   prewarm hint, replayed without) then violates instead of mis-charging. *)

(* Locations warm by construction on every replay of this transaction —
   the sender, the call target, a created contract's address — never vary
   across replays; a guard on them could only cause spurious fallbacks. *)
let entry_warm_invariant b (key : Address.t * U256.t option) =
  match key with
  | a, None -> (
    Address.equal a b.tx.sender
    ||
    match b.tx.to_ with
    | Some t -> Address.equal a t
    | None -> Address.equal a (Evm.Interp.create_address b.tx.sender b.tx.nonce))
  | _, Some _ -> false

let warm_guard b (key : Address.t * U256.t option) =
  if b.spec.Spec.has_access_lists && not (Hashtbl.mem b.warm_touched key) then begin
    Hashtbl.replace b.warm_touched key ();
    if not (entry_warm_invariant b key) then begin
      emit b (I.Guard_warm (key, Evm.Processor.entry_warm b.tx b.prewarm key));
      b.st_guards <- b.st_guards + 1
    end
  end

(* Environment reads are stable within a transaction: CSE promotes repeats. *)
let env_read b src traced =
  let key = K_read src in
  match Hashtbl.find_opt b.cse key with
  | Some op ->
    b.st_state <- b.st_state + 1;
    op
  | None ->
    let r = fresh b traced in
    emit b (I.Read (r, src));
    Hashtbl.replace b.cse key (I.Reg r);
    I.Reg r

(* ---- storage model ---- *)

let skey addr key = (Address.to_bytes addr, U256.to_bytes_be key)

(* Pin a storage-key operand.  Outside template mode a variable key is
   guarded to its traced constant.  In template mode that would defeat
   reuse (ERC-20 balance slots are keccaks over the sender register), so
   instead the key's aliasing pattern against every other key operand of
   the same contract is pinned: the builder's slot map is keyed by traced
   values, and it models serve-time state faithfully exactly when equal
   traced keys stay equal and distinct traced keys stay distinct. *)
let pin_skey b addr key_op traced_key =
  match b.tmpl with
  | None -> guard b key_op traced_key
  | Some t ->
    (match key_op with
    | I.Const v ->
      if not (U256.equal v traced_key) then raise (Unsupported "constant guard mismatch")
    | I.Reg _ -> ());
    let ak = Address.to_bytes addr in
    let seen =
      match Hashtbl.find_opt t.t_skeys ak with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.t_skeys ak l;
        l
    in
    if not (List.exists (fun (op', _) -> op' = key_op) !seen) then begin
      List.iter
        (fun (op', k') ->
          match (key_op, op') with
          | I.Const _, I.Const _ -> () (* constants never change aliasing *)
          | _ ->
            let equal = U256.equal traced_key k' in
            let e = compute b I.C_eq [| key_op; op' |] (I.bool_word equal) in
            guard b e (I.bool_word equal))
        !seen;
      seen := (key_op, traced_key) :: !seen
    end

(* Remember the operand that first named a traced slot so the deferred
   write set can address it the same way ([W_storage_dyn] for registers). *)
let skey_first_op b k key_op =
  match b.tmpl with
  | None -> ()
  | Some t -> if not (Hashtbl.mem t.t_skey_first k) then Hashtbl.replace t.t_skey_first k key_op

let sload b addr key_op traced_key traced_val =
  pin_skey b addr key_op traced_key;
  let k = skey addr traced_key in
  skey_first_op b k key_op;
  match SKey.find_opt k b.world.storage with
  | Some op ->
    b.st_state <- b.st_state + 1;
    op
  | None ->
    let r = fresh b traced_val in
    let src =
      match (b.tmpl, key_op) with
      | Some _, I.Reg _ -> I.R_storage_dyn (addr, key_op)
      | (None | Some _), _ -> I.R_storage (addr, traced_key)
    in
    emit b (I.Read (r, src));
    b.world <- { b.world with storage = SKey.add k (I.Reg r) b.world.storage };
    I.Reg r

let sstore b addr key_op traced_key value_op =
  pin_skey b addr key_op traced_key;
  let k = skey addr traced_key in
  skey_first_op b k key_op;
  b.world <-
    {
      b.world with
      storage = SKey.add k value_op b.world.storage;
      storage_dirty = k :: b.world.storage_dirty;
    }

(* ---- balance model ---- *)

let akey addr = Address.to_bytes addr

let traced_balance b addr =
  match AKey.find_opt (akey addr) b.world.balance_traced with
  | Some v -> v
  | None -> Statedb.get_balance b.pre addr

(* Current symbolic balance of [addr], reading it (pre-state value) if it
   has not been read yet and folding in any pending deltas.  [?addr_op]
   lets template mode read through a register (the sender input); the
   world's balance map is keyed by traced addresses, so in template mode
   every newly-read address is aliasing-guarded against the ones already
   read — delta-only addresses commute and need no guard. *)
let balance_read ?addr_op b addr =
  let k = akey addr in
  match AKey.find_opt k b.world.balances with
  | Some op ->
    b.st_state <- b.st_state + 1;
    op
  | None ->
    let a_op = match addr_op with Some o -> o | None -> I.Const (Address.to_u256 addr) in
    (match b.tmpl with
    | Some t ->
      if not (List.exists (fun (op', _) -> op' = a_op) t.t_addr_reads) then begin
        List.iter
          (fun (op', a') ->
            match (a_op, op') with
            | I.Const _, I.Const _ -> ()
            | _ ->
              let equal = U256.equal (Address.to_u256 addr) a' in
              let e = compute b I.C_eq [| a_op; op' |] (I.bool_word equal) in
              guard b e (I.bool_word equal))
          t.t_addr_reads;
        t.t_addr_reads <- (a_op, Address.to_u256 addr) :: t.t_addr_reads
      end;
      if not (Hashtbl.mem t.t_addr_ops k) then Hashtbl.replace t.t_addr_ops k a_op
    | None -> ());
    let pre_val = Statedb.get_balance b.pre addr in
    let r = fresh b pre_val in
    emit b (I.Read (r, I.R_balance a_op));
    let pending = match AKey.find_opt k b.world.deltas with Some ds -> ds | None -> [] in
    let op, traced =
      List.fold_left
        (fun (op, traced) (is_add, amount) ->
          let amt = val_of b amount in
          let cop = if is_add then I.C_add else I.C_sub in
          let traced' = if is_add then U256.add traced amt else U256.sub traced amt in
          (compute b cop [| op; amount |] traced', traced'))
        (I.Reg r, pre_val) (List.rev pending)
    in
    b.world <-
      {
        b.world with
        balances = AKey.add k op b.world.balances;
        deltas = AKey.remove k b.world.deltas;
        balance_traced = AKey.add k traced b.world.balance_traced;
        (* folded-in deltas are real balance changes: without the dirty
           mark, emit_writes would drop the write-back entirely (a
           received transfer would vanish if the balance was read after) *)
        balance_dirty =
          (if pending <> [] then AKey.add k () b.world.balance_dirty
           else b.world.balance_dirty);
      };
    op

(* Apply a balance delta (transfer leg). *)
let balance_delta b addr ~is_add amount_op =
  let k = akey addr in
  let amt = val_of b amount_op in
  let traced0 = traced_balance b addr in
  let traced = if is_add then U256.add traced0 amt else U256.sub traced0 amt in
  (match AKey.find_opt k b.world.balances with
  | Some op ->
    let cop = if is_add then I.C_add else I.C_sub in
    let op' = compute b cop [| op; amount_op |] traced in
    b.world <-
      {
        b.world with
        balances = AKey.add k op' b.world.balances;
        balance_dirty = AKey.add k () b.world.balance_dirty;
      }
  | None ->
    let ds = match AKey.find_opt k b.world.deltas with Some ds -> ds | None -> [] in
    b.world <- { b.world with deltas = AKey.add k ((is_add, amount_op) :: ds) b.world.deltas });
  b.world <- { b.world with balance_traced = AKey.add k traced b.world.balance_traced }

(* ---- symbolic memory ---- *)

let mem_write_word mem off op =
  match op with
  | I.Const v ->
    let bytes = U256.to_bytes_be v in
    for i = 0 to 31 do
      Hashtbl.replace mem (off + i) (B_const bytes.[i])
    done
  | I.Reg r ->
    for i = 0 to 31 do
      Hashtbl.replace mem (off + i) (B_reg (r, i))
    done

let mem_write_bytes mem off (src : byte_src array) =
  Array.iteri (fun i v -> Hashtbl.replace mem (off + i) v) src

let mem_slice mem off len : byte_src array =
  Array.init len (fun i ->
      match Hashtbl.find_opt mem (off + i) with Some v -> v | None -> B_const '\000')

(* Pad-with-zeros slice of a byte_src array (calldata / returndata). *)
let arr_slice (src : byte_src array) off len : byte_src array =
  Array.init len (fun i ->
      if off + i < Array.length src && off + i >= 0 then src.(off + i) else B_const '\000')

let bytes_as_srcs s = Array.init (String.length s) (fun i -> B_const s.[i])

(* Coalesce byte sources into pieces. *)
let pieces_of_srcs (srcs : byte_src array) : I.piece list =
  let out = ref [] in
  let buf = Buffer.create 32 in
  let flush_const () =
    if Buffer.length buf > 0 then begin
      out := I.P_const (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  let pending = ref None (* (reg, start_off, len) *) in
  let flush_reg () =
    match !pending with
    | Some (r, off, len) ->
      out := I.P_reg (r, off, len) :: !out;
      pending := None
    | None -> ()
  in
  Array.iter
    (fun src ->
      match src with
      | B_const c ->
        flush_reg ();
        Buffer.add_char buf c
      | B_reg (r, i) -> (
        flush_const ();
        match !pending with
        | Some (r', off, len) when r' = r && off + len = i ->
          pending := Some (r', off, len + 1)
        | _ ->
          flush_reg ();
          pending := Some (r, i, 1)))
    srcs;
  flush_reg ();
  flush_const ();
  List.rev !out

(* A 32-byte slice as a single operand if possible. *)
let operand_of_word_srcs b (srcs : byte_src array) traced : I.operand option =
  assert (Array.length srcs = 32);
  let all_const = Array.for_all (function B_const _ -> true | B_reg _ -> false) srcs in
  if all_const then begin
    let s =
      String.init 32 (fun i -> match srcs.(i) with B_const c -> c | B_reg _ -> assert false)
    in
    let v = U256.of_bytes_be s in
    if not (U256.equal v traced) then raise (Unsupported "memory const mismatch");
    Some (I.Const v)
  end
  else begin
    match srcs.(0) with
    | B_reg (r, 0) ->
      let whole = ref true in
      for i = 1 to 31 do
        match srcs.(i) with
        | B_reg (r', j) when r' = r && j = i -> ()
        | B_reg _ | B_const _ -> whole := false
      done;
      if !whole then begin
        if not (U256.equal b.reg_vals.(r) traced) then
          raise (Unsupported "register alias mismatch");
        Some (I.Reg r)
      end
      else None
    | B_reg _ | B_const _ -> None
  end

(* Word-valued load from byte sources: alias, constant, or a Pack instr. *)
let word_of_srcs b srcs traced =
  match operand_of_word_srcs b srcs traced with
  | Some op ->
    b.st_mem <- b.st_mem + 1;
    op
  | None -> begin
    let pieces = pieces_of_srcs srcs in
    let key = K_pack pieces in
    match Hashtbl.find_opt b.cse key with
    | Some op ->
      b.st_cse <- b.st_cse + 1;
      op
    | None ->
      b.st_decomposed <- b.st_decomposed + 1;
      let r = fresh b traced in
      emit b (I.Pack (r, pieces));
      Hashtbl.replace b.cse key (I.Reg r);
      I.Reg r
  end

let keccak_of_srcs b srcs traced =
  let pieces = pieces_of_srcs srcs in
  let all_const = List.for_all (function I.P_const _ -> true | I.P_reg _ -> false) pieces in
  if all_const then begin
    let s = String.concat "" (List.map (function I.P_const s -> s | I.P_reg _ -> "") pieces) in
    let v = Khash.Keccak.digest_u256 s in
    if not (U256.equal v traced) then raise (Unsupported "keccak const mismatch");
    b.st_folded <- b.st_folded + 1;
    I.Const v
  end
  else begin
    let key = K_keccak pieces in
    match Hashtbl.find_opt b.cse key with
    | Some op ->
      b.st_cse <- b.st_cse + 1;
      op
    | None ->
      let r = fresh b traced in
      emit b (I.Keccak (r, pieces));
      Hashtbl.replace b.cse key (I.Reg r);
      I.Reg r
  end

(* ---- symbolic stack ---- *)

let cur b = match b.frames with f :: _ -> f | [] -> raise (Unsupported "no frame")

let spush b op =
  let f = cur b in
  f.stack <- op :: f.stack

let spop b =
  let f = cur b in
  match f.stack with
  | op :: rest ->
    f.stack <- rest;
    op
  | [] -> raise (Unsupported "symbolic stack underflow")

(* Pop [n] operands, checking them against the traced input values. *)
let spopn b (step : Evm.Trace.step) n =
  Array.init n (fun i ->
      let op = spop b in
      let traced = step.inputs.(i) in
      if not (U256.equal (val_of b op) traced) then
        raise (Unsupported "symbolic/traced divergence");
      op)

let as_int v =
  match U256.to_int_opt v with Some n -> n | None -> raise (Unsupported "huge offset")

(* ---- per-step translation ---- *)

let do_step b (step : Evm.Trace.step) =
  let f = cur b in
  let out i = step.outputs.(i) in
  let inp i = step.inputs.(i) in
  match step.op with
  (* pure stack traffic — eliminated *)
  | PUSH _ ->
    b.st_stack <- b.st_stack + 1;
    spush b (I.Const (out 0))
  | POP ->
    b.st_stack <- b.st_stack + 1;
    ignore (spop b)
  | DUP n ->
    b.st_stack <- b.st_stack + 1;
    spush b (List.nth f.stack (n - 1))
  | SWAP n ->
    b.st_stack <- b.st_stack + 1;
    let arr = Array.of_list f.stack in
    if Array.length arr <= n then raise (Unsupported "symbolic stack underflow");
    let top = arr.(0) in
    arr.(0) <- arr.(n);
    arr.(n) <- top;
    f.stack <- Array.to_list arr
  (* control flow — eliminated, guarded *)
  | JUMPDEST -> b.st_control <- b.st_control + 1
  | JUMP ->
    b.st_control <- b.st_control + 1;
    let args = spopn b step 1 in
    guard b args.(0) (inp 0)
  | JUMPI ->
    b.st_control <- b.st_control + 1;
    let args = spopn b step 2 in
    guard b args.(0) (inp 0);
    guard_truth b args.(1) (inp 1)
  | PC | MSIZE | GAS ->
    b.st_control <- b.st_control + 1;
    spush b (I.Const (out 0))
  (* constants of the transaction itself *)
  | ADDRESS -> spush b (I.Const (Address.to_u256 f.ctx))
  | ORIGIN ->
    spush b
      (match b.tmpl with
      | Some t -> I.Reg t.t_sender
      | None -> I.Const (Address.to_u256 b.tx.sender))
  | CALLER -> spush b f.caller_word
  | CALLVALUE -> spush b f.callvalue
  | GASPRICE ->
    spush b (match b.tmpl with Some t -> I.Reg t.t_gasprice | None -> I.Const (out 0))
  | CALLDATASIZE | CODESIZE | CHAINID -> spush b (I.Const (out 0))
  (* environment reads *)
  | TIMESTAMP -> spush b (env_read b I.R_timestamp (out 0))
  | NUMBER -> spush b (env_read b I.R_number (out 0))
  | COINBASE -> spush b (env_read b I.R_coinbase (out 0))
  | DIFFICULTY -> spush b (env_read b I.R_difficulty (out 0))
  | GASLIMIT -> spush b (env_read b I.R_gaslimit (out 0))
  | BLOCKHASH ->
    let args = spopn b step 1 in
    spush b (env_read b (I.R_blockhash args.(0)) (out 0))
  | EXTCODESIZE ->
    let args = spopn b step 1 in
    guard b args.(0) (inp 0);
    spush b (env_read b (I.R_extcodesize (I.Const (inp 0))) (out 0))
  | EXTCODEHASH ->
    let args = spopn b step 1 in
    guard b args.(0) (inp 0);
    spush b (env_read b (I.R_extcodehash (I.Const (inp 0))) (out 0))
  (* state reads *)
  | BALANCE ->
    let args = spopn b step 1 in
    guard b args.(0) (inp 0);
    warm_guard b (Address.of_u256 (inp 0), None);
    spush b (balance_read b (Address.of_u256 (inp 0)))
  | SELFBALANCE ->
    (* the executing account is warm by construction — no warmth guard *)
    spush b (balance_read b f.ctx)
  | SLOAD ->
    let args = spopn b step 1 in
    warm_guard b (f.ctx, Some (inp 0));
    spush b (sload b f.ctx args.(0) (inp 0) (out 0))
  | SSTORE ->
    let args = spopn b step 2 in
    warm_guard b (f.ctx, Some (inp 0));
    (* Under refund specs the traced gas embeds a refund per zero write:
       pin the zeroness of a variable stored value so a replay writing
       nonzero (different refund) violates instead of mis-charging. *)
    (match args.(1) with
    | I.Const _ -> ()
    | I.Reg _ ->
      if b.spec.Spec.refund_sstore_clear > 0 then begin
        let z = compute b I.C_iszero [| args.(1) |] (I.bool_word (U256.is_zero (inp 1))) in
        guard b z (I.bool_word (U256.is_zero (inp 1)))
      end);
    sstore b f.ctx args.(0) (inp 0) args.(1)
  (* memory — promoted to registers *)
  | MLOAD ->
    let args = spopn b step 1 in
    guard b args.(0) (inp 0);
    let srcs = mem_slice f.mem (as_int (inp 0)) 32 in
    spush b (word_of_srcs b srcs (out 0))
  | MSTORE ->
    b.st_mem <- b.st_mem + 1;
    let args = spopn b step 2 in
    guard b args.(0) (inp 0);
    mem_write_word f.mem (as_int (inp 0)) args.(1)
  | MSTORE8 ->
    b.st_mem <- b.st_mem + 1;
    let args = spopn b step 2 in
    guard b args.(0) (inp 0);
    let dst = as_int (inp 0) in
    (match args.(1) with
    | I.Const c ->
      Hashtbl.replace f.mem dst (B_const (U256.to_bytes_be c).[31])
    | I.Reg r -> Hashtbl.replace f.mem dst (B_reg (r, 31)))
  | CALLDATALOAD ->
    b.st_mem <- b.st_mem + 1;
    let args = spopn b step 1 in
    guard b args.(0) (inp 0);
    let srcs = arr_slice f.calldata (as_int (inp 0)) 32 in
    spush b (word_of_srcs b srcs (out 0))
  | CALLDATACOPY ->
    b.st_mem <- b.st_mem + 1;
    let args = spopn b step 3 in
    Array.iteri (fun i op -> guard b op (inp i)) args;
    let dst = as_int (inp 0) and src = as_int (inp 1) and len = as_int (inp 2) in
    mem_write_bytes f.mem dst (arr_slice f.calldata src len)
  | CODECOPY ->
    b.st_mem <- b.st_mem + 1;
    let args = spopn b step 3 in
    Array.iteri (fun i op -> guard b op (inp i)) args;
    let dst = as_int (inp 0) and src = as_int (inp 1) and len = as_int (inp 2) in
    mem_write_bytes f.mem dst (arr_slice (bytes_as_srcs f.code) src len)
  | RETURNDATASIZE -> spush b (I.Const (out 0))
  | RETURNDATACOPY ->
    b.st_mem <- b.st_mem + 1;
    let args = spopn b step 3 in
    Array.iteri (fun i op -> guard b op (inp i)) args;
    let dst = as_int (inp 0) and src = as_int (inp 1) and len = as_int (inp 2) in
    mem_write_bytes f.mem dst (arr_slice f.retdata src len)
  (* hashing — decomposed into a register-based hash of memory pieces *)
  | SHA3 ->
    let args = spopn b step 2 in
    Array.iteri (fun i op -> guard b op (inp i)) args;
    let off = as_int (inp 0) and len = as_int (inp 1) in
    spush b (keccak_of_srcs b (mem_slice f.mem off len) (out 0))
  (* logging *)
  | LOG n ->
    let args = spopn b step (n + 2) in
    guard b args.(0) (inp 0);
    guard b args.(1) (inp 1);
    let topics = List.init n (fun i -> args.(i + 2)) in
    let data = pieces_of_srcs (mem_slice f.mem (as_int (inp 0)) (as_int (inp 1))) in
    b.world <- { b.world with logs = (f.ctx, topics, data) :: b.world.logs }
  (* arithmetic / comparison / bitwise *)
  | EXP ->
    let args = spopn b step 2 in
    guard_size b args.(1) (inp 1);
    spush b (compute b I.C_exp args (out 0))
  | ( ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | ADDMOD | MULMOD | SIGNEXTEND | LT | GT
    | SLT | SGT | EQ | ISZERO | AND | OR | XOR | NOT | BYTE | SHL | SHR | SAR ) as op -> (
    match I.compute_op_of_evm op with
    | Some cop ->
      let args = spopn b step (Evm.Op.stack_in op) in
      spush b (compute b cop args (out 0))
    | None -> assert false)
  (* frame terminators *)
  | STOP ->
    f.result <- [||];
    f.ended <- Some `Return
  | RETURN | REVERT ->
    let args = spopn b step 2 in
    Array.iteri (fun i op -> guard b op (inp i)) args;
    let off = as_int (inp 0) and len = as_int (inp 1) in
    f.result <- mem_slice f.mem off len;
    f.ended <- Some (if step.op = RETURN then `Return else `Revert)
  | SELFDESTRUCT -> raise (Unsupported "SELFDESTRUCT")
  | EXTCODECOPY ->
    (* Pin the code identity with a hash guard, then the copied bytes are
       the constants we read from the pre-state. *)
    b.st_mem <- b.st_mem + 1;
    let args = spopn b step 4 in
    Array.iteri (fun i op -> guard b op (inp i)) args;
    let addr = Address.of_u256 (inp 0) in
    let code = Statedb.get_code b.pre addr in
    let hash_val =
      if Statedb.is_empty_account b.pre addr then U256.zero
      else U256.of_bytes_be (Statedb.get_code_hash b.pre addr)
    in
    let h = env_read b (I.R_extcodehash (I.Const (inp 0))) hash_val in
    guard b h hash_val;
    let dst = as_int (inp 1) and src = as_int (inp 2) and len = as_int (inp 3) in
    mem_write_bytes f.mem dst (arr_slice (bytes_as_srcs code) src len)
  | CREATE | CREATE2 | CALL | CALLCODE | DELEGATECALL | STATICCALL ->
    raise (Unsupported "call family must arrive as Call_enter")
  | INVALID -> raise (Unsupported "INVALID executed")

(* ---- call-family handling ---- *)

(* Returns [Some frame] if a child frame begins, [None] for instant calls
   (empty code / precompile), in which case the very next event must be the
   matching Call_exit. *)
let do_call_enter b (step : Evm.Trace.step) (info : Evm.Trace.call_info) =
  let f = cur b in
  (match info.kind with
  | C_create | C_create2 -> raise (Unsupported "CREATE in trace")
  | C_call | C_callcode | C_delegate | C_static -> ());
  let has_value = match step.op with Evm.Op.CALL | Evm.Op.CALLCODE -> true | _ -> false in
  let arity = if has_value then 7 else 6 in
  let args = spopn b step arity in
  let inp i = step.inputs.(i) in
  (* gas operand: guard when variable so forwarding stays path-constant *)
  guard b args.(0) (inp 0);
  (* target *)
  guard b args.(1) (inp 1);
  (* the interpreter charges the cold-account surcharge on the popped
     target (code address) for every call kind, precompiles included *)
  warm_guard b (Address.of_u256 (inp 1), None);
  let value_op = if has_value then args.(2) else I.Const U256.zero in
  let voff = if has_value then 1 else 0 in
  let in_off = as_int (inp (2 + voff))
  and in_len = as_int (inp (3 + voff))
  and out_off = as_int (inp (4 + voff))
  and out_len = as_int (inp (5 + voff)) in
  for i = 2 + voff to 5 + voff do
    guard b args.(i) (inp i)
  done;
  let traced_value = if has_value then inp 2 else U256.zero in
  (* A variable value flips the transfer/gas behaviour at 0: pin its
     zeroness. *)
  (match value_op with
  | I.Const _ -> ()
  | I.Reg _ ->
    if has_value then begin
      let z = compute b I.C_iszero [| value_op |] (I.bool_word (U256.is_zero traced_value)) in
      guard b z (I.bool_word (U256.is_zero traced_value))
    end);
  let transfer_intended = info.transfer <> None in
  (* Balance-sufficiency control constraint for transferring calls. *)
  if transfer_intended then begin
    let bal = balance_read b f.ctx in
    let insufficient = U256.lt (val_of b bal) traced_value in
    (* reason X_balance means the transfer failed the check *)
    let lt = compute b I.C_lt [| bal; value_op |] (I.bool_word insufficient) in
    guard b lt (I.bool_word insufficient)
  end;
  let snapshot = b.world in
  let child_calldata = mem_slice f.mem in_off in_len in
  let transfer_in =
    match info.transfer with
    | Some v when not (U256.is_zero v) -> Some (f.ctx, info.child_ctx, value_op, v)
    | Some _ | None -> None
  in
  let apply_transfer () =
    match transfer_in with
    | Some (from, to_, amount_op, _) ->
      balance_delta b from ~is_add:false amount_op;
      balance_delta b to_ ~is_add:true amount_op
    | None -> ()
  in
  match Evm.Interp.precompile_of info.child_code_addr with
  | Some kind ->
    (* precompile: no frame; decompose into an S-EVM hash instruction when
       the input is symbolic *)
    apply_transfer ();
    let outputs =
      match kind with
      | Evm.Interp.P_identity -> child_calldata
      | Evm.Interp.P_sha256 ->
        let pieces = pieces_of_srcs child_calldata in
        let all_const =
          List.for_all (function I.P_const _ -> true | I.P_reg _ -> false) pieces
        in
        let traced_input = I.bytes_of_pieces b.reg_vals pieces in
        let digest = Khash.Sha256.digest traced_input in
        if all_const then begin
          b.st_folded <- b.st_folded + 1;
          bytes_as_srcs digest
        end
        else begin
          let key = K_keccak (I.P_const "sha256" :: pieces) in
          let op =
            match Hashtbl.find_opt b.cse key with
            | Some op ->
              b.st_cse <- b.st_cse + 1;
              op
            | None ->
              b.st_decomposed <- b.st_decomposed + 1;
              let r = fresh b (U256.of_bytes_be digest) in
              emit b (I.Sha256 (r, pieces));
              Hashtbl.replace b.cse key (I.Reg r);
              I.Reg r
          in
          match op with
          | I.Reg r -> Array.init 32 (fun i -> B_reg (r, i))
          | I.Const v -> bytes_as_srcs (U256.to_bytes_be v)
        end
    in
    `Instant (snapshot, outputs, out_off, out_len)
  | None ->
  if info.child_code = "" then begin
    (* instant call to a code-less account: transfer applies; exit follows *)
    apply_transfer ();
    `Instant (snapshot, [||], out_off, out_len)
  end
  else begin
    apply_transfer ();
    let caller_word, callvalue, ctx =
      match info.kind with
      | C_delegate -> (f.caller_word, f.callvalue, f.ctx)
      | C_callcode -> (I.Const (Address.to_u256 f.ctx), value_op, f.ctx)
      | C_static -> (I.Const (Address.to_u256 f.ctx), I.Const U256.zero, info.child_ctx)
      | C_call -> (I.Const (Address.to_u256 f.ctx), value_op, info.child_ctx)
      | C_create | C_create2 -> assert false
    in
    let child =
      {
        ctx;
        stack = [];
        mem = Hashtbl.create 64;
        calldata = child_calldata;
        callvalue;
        caller_word;
        code = info.child_code;
        retdata = [||];
        result = [||];
        ended = None;
        out_region = Some (out_off, out_len);
        snapshot;
        transfer_in;
      }
    in
    `Frame child
  end

(* Finish a call whose child frame ran: commit or roll back, copy output. *)
let do_call_exit b child (exit_ : bool * string) =
  let success, _output = exit_ in
  let parent = cur b in
  if not success then b.world <- child.snapshot;
  let result = child.result in
  (* copy into the parent's out region *)
  (match child.out_region with
  | Some (out_off, out_len) ->
    let n = min (Array.length result) out_len in
    if n > 0 then mem_write_bytes parent.mem out_off (Array.sub result 0 n)
  | None -> ());
  parent.retdata <- result;
  spush b (I.Const (if success then U256.one else U256.zero))

(* ---- write-set emission ---- *)

let emit_writes b (receipt : Evm.Processor.receipt) ~extra_writes benv_coinbase_traced =
  match receipt.status with
  | Invalid _ -> []
  | Success | Reverted ->
    let tx = b.tx in
    let gas_left = tx.gas_limit - receipt.gas_used in
    (* in template mode limit, price and gas_used are all register-held,
       so the refund and the miner fee are products of registers; ordinary
       paths bake the traced constants *)
    let gasprice_op =
      match b.tmpl with Some t -> I.Reg t.t_gasprice | None -> I.Const tx.gas_price
    in
    let refund_op, fee_op =
      match b.tmpl with
      | None ->
        ( I.Const (U256.mul (U256.of_int gas_left) tx.gas_price),
          I.Const (U256.mul (U256.of_int receipt.gas_used) tx.gas_price) )
      | Some t ->
        let left =
          compute b I.C_sub
            [| I.Reg t.t_gaslimit; I.Reg t.t_gas_used |]
            (U256.of_int gas_left)
        in
        ( compute b I.C_mul [| left; gasprice_op |]
            (U256.mul (U256.of_int gas_left) tx.gas_price),
          compute b I.C_mul
            [| I.Reg t.t_gas_used; gasprice_op |]
            (U256.mul (U256.of_int receipt.gas_used) tx.gas_price) )
    in
    (* refund of unused gas *)
    balance_delta b tx.sender ~is_add:true refund_op;
    let nonce_write =
      match b.tmpl with
      | None -> I.W_nonce_set (tx.sender, tx.nonce + 1)
      | Some t ->
        let n1 =
          compute b I.C_add
            [| I.Reg t.t_nonce; I.Const U256.one |]
            (U256.of_int (tx.nonce + 1))
        in
        I.W_nonce_dyn (I.Reg t.t_sender, n1)
    in
    let writes = ref [ nonce_write ] in
    let add w = writes := w :: !writes in
    (* absolute balance writes for addresses whose balance was read,
       addressed the way they were first read (register in template mode) *)
    let balance_addr_op k =
      match b.tmpl with
      | Some t when Hashtbl.mem t.t_addr_ops k -> Hashtbl.find t.t_addr_ops k
      | Some _ | None -> I.Const (Address.to_u256 (Address.of_bytes k))
    in
    AKey.iter
      (fun k op ->
        if AKey.mem k b.world.balance_dirty then add (I.W_balance_set (balance_addr_op k, op)))
      b.world.balances;
    (* pure deltas for addresses never read: fold constants into one add
       (wrap-around makes subtraction an addition of the complement) *)
    AKey.iter
      (fun k ds ->
        let addr_op = I.Const (Address.to_u256 (Address.of_bytes k)) in
        let const_net, regs =
          List.fold_left
            (fun (net, regs) (is_add, amount) ->
              match amount with
              | I.Const v -> ((if is_add then U256.add net v else U256.sub net v), regs)
              | I.Reg _ -> (net, (is_add, amount) :: regs))
            (U256.zero, []) ds
        in
        if not (U256.is_zero const_net) then add (I.W_balance_add (addr_op, I.Const const_net));
        List.iter
          (fun (is_add, amount) ->
            add (if is_add then I.W_balance_add (addr_op, amount)
                 else I.W_balance_sub (addr_op, amount)))
          regs)
      b.world.deltas;
    (* storage, one write per dirty slot — dynamically addressed when the
       slot was first named by a register key *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun k ->
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          let addr_bytes, key_bytes = k in
          let addr = Address.of_bytes addr_bytes in
          let value = SKey.find k b.world.storage in
          let dyn_key =
            match b.tmpl with
            | Some t -> (
              match Hashtbl.find_opt t.t_skey_first k with
              | Some (I.Reg _ as op) -> Some op
              | Some (I.Const _) | None -> None)
            | None -> None
          in
          match dyn_key with
          | Some key_op -> add (I.W_storage_dyn (addr, key_op, value))
          | None -> add (I.W_storage (addr, U256.of_bytes_be key_bytes, value))
        end)
      b.world.storage_dirty;
    (* creation effects (deployed code, fresh nonce) *)
    List.iter add extra_writes;
    (* logs in emission order *)
    List.iter (fun (a, topics, data) -> add (I.W_log (a, topics, data))) (List.rev b.world.logs);
    (* miner fee last: coinbase is a context value, read not guarded *)
    let cb = env_read b I.R_coinbase benv_coinbase_traced in
    add (I.W_balance_add (cb, fee_op));
    List.rev !writes

(* ---- main entry ---- *)

let count_trace_len events =
  Array.fold_left
    (fun acc ev ->
      match ev with
      | Evm.Trace.Step _ | Evm.Trace.Call_enter _ -> acc + 1
      | Evm.Trace.Call_exit _ -> acc)
    0 events

let build ?spec ?(prewarm = []) ?(template = false) (tx : Evm.Env.tx)
    (benv : Evm.Env.block_env) (events : Evm.Trace.event array)
    (receipt : Evm.Processor.receipt) (pre : Statedb.t) : (I.path, string) result =
  let spec = match spec with Some s -> s | None -> !Spec.current in
  try
    let b = create spec prewarm tx pre in
    if template then init_template b receipt;
    b.trace_len <- count_trace_len events;
    let invalid_reason =
      match receipt.status with Invalid r -> Some r | Success | Reverted -> None
    in
    (* --- preamble: nonce and upfront-balance constraints --- *)
    let r_nonce = fresh b (U256.of_int receipt.sender_nonce_before) in
    (match b.tmpl with
    | Some t -> emit b (I.Read (r_nonce, I.R_nonce_of (I.Reg t.t_sender)))
    | None -> emit b (I.Read (r_nonce, I.R_nonce tx.sender)));
    let nonce_ok = receipt.sender_nonce_before = tx.nonce in
    let nonce_expect =
      match b.tmpl with Some t -> I.Reg t.t_nonce | None -> I.Const (U256.of_int tx.nonce)
    in
    let eq = compute b I.C_eq [| I.Reg r_nonce; nonce_expect |] (I.bool_word nonce_ok) in
    let is_nonce_invalid =
      match invalid_reason with Some r -> String.length r >= 5 && String.sub r 0 5 = "nonce" | None -> false
    in
    guard b eq (I.bool_word (not is_nonce_invalid));
    let finish_path ?(extra_writes = []) output_pieces =
      let writes = emit_writes b receipt (Address.to_u256 benv.coinbase) ~extra_writes in
      let scheduled = Opt.schedule (List.rev b.instrs) writes output_pieces in
      let stats =
        {
          I.evm_trace_len = b.trace_len;
          decomposed_added = b.st_decomposed;
          stack_eliminated = b.st_stack;
          mem_eliminated = b.st_mem;
          control_eliminated = b.st_control;
          state_eliminated = b.st_state;
          const_folded = b.st_folded;
          cse_removed = b.st_cse;
          dead_removed = scheduled.dead_removed;
          guards_added = b.st_guards;
          constraint_len = scheduled.first_fast;
          fastpath_len = Array.length scheduled.instrs - scheduled.first_fast;
        }
      in
      Ok
        {
          I.instrs = scheduled.instrs;
          first_fast = scheduled.first_fast;
          writes;
          status = receipt.status;
          gas_used = receipt.gas_used;
          gas_used_src =
            (match b.tmpl with
            | Some t -> Some (I.Reg t.t_gas_used)
            | None -> None);
          gas_refund = receipt.gas_refund;
          output = output_pieces;
          reg_count = b.next_reg;
          reg_values = Array.sub b.reg_vals 0 b.next_reg;
          fork = b.spec.Spec.id;
          inputs = (match b.tmpl with Some t -> t.t_inputs | None -> [||]);
          stats;
        }
    in
    if is_nonce_invalid then finish_path []
    else begin
      let sender_addr_op = match b.tmpl with Some t -> Some (I.Reg t.t_sender) | None -> None in
      let bal_op = balance_read ?addr_op:sender_addr_op b tx.sender in
      if not (U256.equal (val_of b bal_op) receipt.sender_balance_before) then
        raise (Unsupported "pre-state balance mismatch");
      let upfront = Evm.Processor.upfront_cost tx in
      let purchase_traced = U256.mul (U256.of_int tx.gas_limit) tx.gas_price in
      let upfront_op, purchase_op =
        match b.tmpl with
        | None -> (I.Const upfront, I.Const purchase_traced)
        | Some t ->
          (* limit, price and value are all inputs *)
          let m =
            compute b I.C_mul
              [| I.Reg t.t_gaslimit; I.Reg t.t_gasprice |]
              purchase_traced
          in
          (compute b I.C_add [| m; I.Reg t.t_value |] upfront, m)
      in
      let insufficient = U256.lt receipt.sender_balance_before upfront in
      let lt = compute b I.C_lt [| bal_op; upfront_op |] (I.bool_word insufficient) in
      guard b lt (I.bool_word insufficient);
      (match b.tmpl with
      | None -> ()
      | Some t ->
        (* intrinsic validity: the served limit covers its own intrinsic
           charge (a served short limit would be an Invalid transaction,
           which this Success/Reverted path cannot represent) *)
        let invalid_gas =
          compute b I.C_lt [| I.Reg t.t_gaslimit; I.Reg t.t_intrinsic |] U256.zero
        in
        guard b invalid_gas U256.zero;
        (* gas envelope: served limit - intrinsic >= traced limit -
           intrinsic, so at every step of the replayed path the remaining
           gas is no smaller than during tracing — no new out-of-gas, and
           with GAS-free code no behavioral difference either *)
        let intrinsic = Spec.intrinsic_gas b.spec ~is_create:false tx.data in
        let env_traced = U256.of_int (tx.gas_limit - intrinsic) in
        let env_op =
          compute b I.C_sub [| I.Reg t.t_gaslimit; I.Reg t.t_intrinsic |] env_traced
        in
        let short =
          compute b I.C_lt [| env_op; I.Const env_traced |] U256.zero
        in
        guard b short U256.zero);
      match invalid_reason with
      | Some _ -> finish_path [] (* insufficient funds or intrinsic gas *)
      | None ->
        (* gas purchase *)
        balance_delta b tx.sender ~is_add:false purchase_op;
        (* Walk the recorded events against the symbolic top frame, then
           unwind it; returns the frame's termination and result bytes. *)
        let run_top top =
          b.frames <- [ top ];
          let i = ref 0 in
          let n = Array.length events in
          while !i < n do
            (match events.(!i) with
            | Evm.Trace.Step s -> do_step b s
            | Evm.Trace.Call_enter (s, info) -> (
              match do_call_enter b s info with
              | `Frame child -> b.frames <- child :: b.frames
              | `Instant (snapshot, retsrcs, out_off, out_len) -> (
                incr i;
                if !i >= n then raise (Unsupported "truncated trace");
                match events.(!i) with
                | Evm.Trace.Call_exit { success; _ } ->
                  let parent = cur b in
                  if not success then b.world <- snapshot;
                  let result = if success then retsrcs else [||] in
                  let m = min (Array.length result) out_len in
                  if m > 0 then mem_write_bytes parent.mem out_off (Array.sub result 0 m);
                  parent.retdata <- result;
                  spush b (I.Const (if success then U256.one else U256.zero))
                | Evm.Trace.Step _ | Evm.Trace.Call_enter _ ->
                  raise (Unsupported "instant call not followed by exit")))
            | Evm.Trace.Call_exit { success; output; _ } -> (
              match b.frames with
              | child :: (_ :: _ as rest) ->
                b.frames <- rest;
                do_call_exit b child (success, output)
              | [ _ ] | [] -> raise (Unsupported "unbalanced call exit")));
            incr i
          done;
          match b.frames with
          | [ top ] ->
            (match top.ended with
            | Some `Return -> ()
            | Some `Revert | None -> b.world <- top.snapshot);
            (match (receipt.status, top.ended) with
            | Success, Some `Return | Reverted, (Some `Revert | None) -> ()
            | (Success | Reverted | Invalid _), _ ->
              raise (Unsupported "status/trace mismatch"));
            (top.ended, top.result)
          | _ :: _ | [] -> raise (Unsupported "trace ended mid-call")
        in
        let mk_top ~ctx ~code ~calldata ~snap_world =
          {
            ctx;
            stack = [];
            mem = Hashtbl.create 64;
            calldata;
            callvalue =
              (match b.tmpl with Some t -> I.Reg t.t_value | None -> I.Const tx.value);
            caller_word =
              (match b.tmpl with
              | Some t -> I.Reg t.t_sender
              | None -> I.Const (Address.to_u256 tx.sender));
            code;
            retdata = [||];
            result = [||];
            ended = None;
            out_region = None;
            snapshot = snap_world;
            transfer_in = None;
          }
        in
        let output_pieces, extra_writes =
          match tx.to_ with
          | Some target ->
            let snap_world = b.world in
            (* zero-value transactions skip the transfer legs at build time;
               the template key pins value zeroness, so a served transaction
               never needs legs the template lacks (and a register-held
               nonzero value flows through the legs symbolically) *)
            if not (U256.is_zero tx.value) then begin
              let v_op =
                match b.tmpl with Some t -> I.Reg t.t_value | None -> I.Const tx.value
              in
              balance_delta b tx.sender ~is_add:false v_op;
              balance_delta b target ~is_add:true v_op
            end;
            let code = Statedb.get_code pre target in
            let calldata_srcs =
              match b.tmpl with
              | None -> bytes_as_srcs tx.data
              | Some t ->
                (* selector bytes are template-key-pinned constants; every
                   byte past offset 4 aliases a calldata-word input register *)
                Array.init (String.length tx.data) (fun i ->
                    if i < 4 then B_const tx.data.[i]
                    else B_reg (t.t_words.((i - 4) / 32), (i - 4) mod 32))
            in
            let pieces =
              match Evm.Interp.precompile_of target with
              | Some kind ->
                (* top-level precompile call: data is constant, so is the
                   result (template mode rejected precompile targets up
                   front) *)
                let _, out = Evm.Interp.run_precompile kind tx.data in
                if out = "" then [] else [ I.P_const out ]
              | None ->
                if code = "" then []
                else begin
                  let _, result =
                    run_top (mk_top ~ctx:target ~code ~calldata:calldata_srcs ~snap_world)
                  in
                  pieces_of_srcs result
                end
            in
            (pieces, [])
          | None ->
            (* top-level contract creation: the new address is a constant
               (sender and nonce are already pinned by the preamble guards),
               the init code is the transaction data. *)
            let new_addr = Evm.Interp.create_address tx.sender tx.nonce in
            (* collision constraints: the target slot must look exactly as it
               did during speculation *)
            let traced_nonce = Statedb.get_nonce pre new_addr in
            let r_nonce2 = fresh b (U256.of_int traced_nonce) in
            emit b (I.Read (r_nonce2, I.R_nonce new_addr));
            guard b (I.Reg r_nonce2) (U256.of_int traced_nonce);
            let traced_size = String.length (Statedb.get_code pre new_addr) in
            let sz =
              env_read b (I.R_extcodesize (I.Const (Address.to_u256 new_addr)))
                (U256.of_int traced_size)
            in
            guard b sz (U256.of_int traced_size);
            let collision = traced_nonce > 0 || traced_size > 0 in
            if collision then ([], [])
            else begin
              let snap_world = b.world in
              if not (U256.is_zero tx.value) then begin
                balance_delta b tx.sender ~is_add:false (I.Const tx.value);
                balance_delta b new_addr ~is_add:true (I.Const tx.value)
              end;
              let ended, result =
                run_top (mk_top ~ctx:new_addr ~code:tx.data ~calldata:[||] ~snap_world)
              in
              match ended with
              | Some `Return ->
                let deployed = pieces_of_srcs result in
                ( [ I.P_const (Address.to_bytes new_addr) ],
                  [ I.W_nonce_set (new_addr, 1); I.W_code (new_addr, deployed) ] )
              | Some `Revert | None -> (pieces_of_srcs result, [])
            end
        in
        (* sanity: materialized output must equal the traced output *)
        let materialized = I.bytes_of_pieces b.reg_vals output_pieces in
        if not (String.equal materialized receipt.output) then
          raise (Unsupported "output mismatch");
        finish_path ~extra_writes output_pieces
    end
  with Unsupported msg -> Error msg
