(** Linear replay of a single synthesized S-EVM path.

    This is the "trace build + replay" leg of the three-engine conformance
    oracle: it walks [Ir.path.instrs] in order against a concrete state and
    block environment, checks every guard, and — only if all guards held —
    applies the deferred write set and rebuilds the receipt.

    It deliberately shares no evaluation code with [Ap.Exec]: the point is an
    independent re-implementation of the S-EVM semantics, so a bug in the AP
    executor and a bug in the replayer would have to coincide to go
    unnoticed. *)

open State

type violation = {
  index : int;  (** index into [path.instrs] of the failing guard *)
  detail : string;
}

type outcome =
  | Replayed of Evm.Processor.receipt
  | Violated of violation
      (** a guard failed; no state was written (writes are deferred) *)

(** {1 Static read/write sets}

    Lifted straight from the traced S-EVM instructions: the conflict-aware
    parallel block executor (DESIGN.md §10) compares them against the
    dynamically captured sets, and they document which locations an AP's
    fast path can ever touch. *)

type rw = {
  rw_reads : Statedb.touch list;  (** deduplicated, unordered *)
  rw_writes : Statedb.touch list;
  rw_exact : bool;
      (** every location was [Const]-addressed: the sets are complete for
          any context that satisfies the path's guards.  When false, a
          [Reg]-addressed location was resolved through the traced register
          value — a prediction, so callers needing soundness must fall back
          to dynamic capture. *)
}

val rw_sets : Ir.path -> rw

val run :
  ?spec:Spec.t ->
  ?prewarm:(Address.t * U256.t option) list ->
  Ir.path ->
  Statedb.t ->
  Evm.Env.block_env ->
  Evm.Env.tx ->
  outcome
(** [run path st benv tx] replays [path] against [st].  On [Replayed r],
    the deferred writes have been applied to [st] and [r] mirrors what
    [Evm.Processor.execute_tx] would have returned (modulo
    [contract_address], which paths never carry).

    [?spec] defaults to [!Spec.current]; a path built under a different
    fork id is [Violated] at [index = -1] before any instruction runs.
    [?prewarm] must match what the replayed transaction would execute
    with: warmth guards are evaluated against
    [Evm.Processor.entry_warm tx prewarm], so a path specialized under a
    warm access-list entry falls back cleanly when replayed cold. *)
